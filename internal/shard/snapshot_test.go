package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/snapfile"
)

// TestRouterSnapshotRoundTrip is the tentpole parity pin for -save-model
// / -load-model: a router driven through fold-ins, deletes and a
// coordinated compaction, saved, and restored must serve byte-identical
// results — and must keep behaving identically through FURTHER fold-ins,
// deletes and compactions, since restore rebuilds live state (registry,
// counters, generation), not a read-only archive.
func TestRouterSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			coll, model, raws := synthFixture(t, 48, 6)
			cfg := Config{Shards: shards, Engine: engine.Config{BatchTick: time.Millisecond}}
			live, err := New(coll, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer closeRouter(t, live)
			ctx := context.Background()

			// Fold in extra documents (user and auto IDs) and tombstone a
			// mix of seed and folded rows, so the saved state reflects a
			// full update history, not a fresh build.
			for i := 0; i < 7; i++ {
				doc := corpus.Document{ID: fmt.Sprintf("extra-%02d", i), Text: coll.Docs[(5*i+3)%coll.Size()].Text}
				if _, _, err := live.Submit(ctx, doc); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}
			if _, _, err := live.Submit(ctx, corpus.Document{Text: coll.Docs[11].Text}); err != nil {
				t.Fatal(err)
			}
			for _, id := range []string{coll.Docs[4].ID, "extra-02"} {
				if _, err := live.Delete(ctx, id); err != nil {
					t.Fatalf("delete %q: %v", id, err)
				}
			}

			path := filepath.Join(t.TempDir(), "tier.lsnp")
			if err := live.SaveSnapshot(path); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			// Save compacts first, so the live router we compare against is
			// in exactly the persisted state.
			restored, f, err := Restore(path, Config{Engine: cfg.Engine}, true)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			defer f.Close()
			defer closeRouter(t, restored)
			if restored.Shards() != shards {
				t.Fatalf("restored %d shards, want %d", restored.Shards(), shards)
			}

			const topK = 12
			check := func(stage string) {
				t.Helper()
				for qi, raw := range raws {
					hl, _ := live.Search(raw, topK)
					hr, _ := restored.Search(raw, topK)
					sameHits(t, fmt.Sprintf("%s query %d", stage, qi), hr, hl)
				}
				bl, _ := live.SearchBatch(raws, topK)
				br, _ := restored.SearchBatch(raws, topK)
				for qi := range raws {
					sameHits(t, fmt.Sprintf("%s batch row %d", stage, qi), br[qi], bl[qi])
				}
			}
			check("restored")

			sl, sr := live.Stats(), restored.Stats()
			if sr.Documents != sl.Documents || sr.Tombstones != sl.Tombstones {
				t.Fatalf("stats diverge: live %d docs/%d dead, restored %d/%d",
					sl.Documents, sl.Tombstones, sr.Documents, sr.Tombstones)
			}
			if !sr.Screening || sr.MirrorMaxEps <= 0 {
				t.Fatal("restored tier lost its screening mirror")
			}

			// Restored state must be live: duplicate IDs still rejected,
			// deletes route, fresh submissions fold into both identically.
			if _, _, err := restored.Submit(ctx, corpus.Document{ID: "extra-00", Text: "x"}); !errors.Is(err, engine.ErrDuplicateID) {
				t.Fatalf("restored registry lost extra-00: %v", err)
			}
			for i := 0; i < 5; i++ {
				doc := corpus.Document{ID: fmt.Sprintf("post-%02d", i), Text: coll.Docs[(7*i+1)%coll.Size()].Text}
				if _, _, err := live.Submit(ctx, doc); err != nil {
					t.Fatalf("live post submit: %v", err)
				}
				if _, _, err := restored.Submit(ctx, doc); err != nil {
					t.Fatalf("restored post submit: %v", err)
				}
			}
			for _, r := range []*Router{live, restored} {
				if _, err := r.Delete(ctx, "extra-04"); err != nil {
					t.Fatalf("post delete: %v", err)
				}
			}
			check("post-restore fold-ins")

			// A further coordinated compaction must land identically — the
			// restored model carries the same SVD base and provenance.
			if err := live.Compact(); err != nil {
				t.Fatalf("live compact: %v", err)
			}
			if err := restored.Compact(); err != nil {
				t.Fatalf("restored compact: %v", err)
			}
			check("post-restore compaction")

			// Auto-ID counters resumed: a fresh auto ID must not collide
			// with the pre-save auto-assigned document.
			id, _, err := restored.Submit(ctx, corpus.Document{Text: "fresh auto"})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(id, "doc-") {
				t.Fatalf("auto id %q", id)
			}
		})
	}
}

// TestRestoreShardCountPinned: the shard count is part of the format —
// restoring onto a different count must fail loudly, zero means "accept
// the saved count".
func TestRestoreShardCountPinned(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 3, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	path := filepath.Join(t.TempDir(), "tier.lsnp")
	if err := r.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(path, Config{Shards: 2}, false); err == nil {
		t.Fatal("restore onto wrong shard count accepted")
	}
	r2, f, err := Restore(path, Config{}, false)
	if err != nil {
		t.Fatalf("restore with unspecified count: %v", err)
	}
	defer f.Close()
	defer closeRouter(t, r2)
	if r2.Shards() != 3 {
		t.Fatalf("restored %d shards", r2.Shards())
	}
}

// resection reads every section of a container back out so a test can
// patch some and rewrite the file.
func resection(t *testing.T, path string) []snapfile.Section {
	t.Helper()
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []snapfile.Section
	for _, name := range f.Names() {
		b, _ := f.Section(name)
		out = append(out, snapfile.Section{Name: name, Data: append([]byte(nil), b...)})
	}
	return out
}

func patchSection(t *testing.T, sections []snapfile.Section, name string, fn func([]byte) []byte) {
	t.Helper()
	for i := range sections {
		if sections[i].Name == name {
			sections[i].Data = fn(sections[i].Data)
			return
		}
	}
	t.Fatalf("section %q not found", name)
}

// TestRestoreDeadRows exercises the tombstone-restore path directly (a
// healthy save compacts tombstones away first, so this state normally
// arises only when a downdate was degenerate): a container whose state
// marks a row dead must restore with that row excluded from results and
// its ID free for resubmission.
func TestRestoreDeadRows(t *testing.T) {
	coll, model, raws := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 2, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	path := filepath.Join(t.TempDir(), "tier.lsnp")
	if err := r.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Kill shard 0's row 1 by hand: ord → -1 in docs, row → state.Dead.
	sections := resection(t, path)
	var victim string
	patchSection(t, sections, "s0/docs", func(b []byte) []byte {
		var docs []savedDoc
		if err := json.Unmarshal(b, &docs); err != nil {
			t.Fatal(err)
		}
		victim = docs[1].ID
		docs[1].Ord = -1
		out, err := json.Marshal(docs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	patchSection(t, sections, "s0/state", func(b []byte) []byte {
		var st shardState
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		st.Dead = append(st.Dead, 1)
		out, err := json.Marshal(&st)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	if err := snapfile.Write(path, sections); err != nil {
		t.Fatal(err)
	}

	r2, f, err := Restore(path, Config{Engine: engine.Config{BatchTick: time.Millisecond}}, true)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer f.Close()
	defer closeRouter(t, r2)
	if st := r2.Stats(); st.Tombstones != 1 {
		t.Fatalf("restored %d tombstones, want 1", st.Tombstones)
	}
	for qi, raw := range raws {
		hits, _ := r2.Search(raw, 40)
		for _, h := range hits {
			if h.ID == victim {
				t.Fatalf("query %d served tombstoned %q", qi, victim)
			}
		}
	}
	ctx := context.Background()
	if _, err := r2.Delete(ctx, victim); !errors.Is(err, engine.ErrUnknownID) {
		t.Fatalf("dead row still in registry: %v", err)
	}
	if _, _, err := r2.Submit(ctx, corpus.Document{ID: victim, Text: coll.Docs[3].Text}); err != nil {
		t.Fatalf("tombstoned ID not resubmittable: %v", err)
	}
}

// TestRestoreRejectsCorrupt: structural damage fails the O(1) open;
// payload bit-rot fails the verify=true open.
func TestRestoreRejectsCorrupt(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 2, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	good := filepath.Join(t.TempDir(), "tier.lsnp")
	if err := r.SaveSnapshot(good); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		section string
		mangle  func([]byte) []byte
		verify  bool
	}{
		{"truncated-mirror", "s0/mirror", func(b []byte) []byte { return b[:len(b)-8] }, false},
		{"dead-row-oob", "s0/state", func(b []byte) []byte {
			var st shardState
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatal(err)
			}
			st.Dead = []int{10_000}
			out, _ := json.Marshal(&st)
			return out
		}, false},
		{"ord-dead-mismatch", "s0/docs", func(b []byte) []byte {
			var docs []savedDoc
			if err := json.Unmarshal(b, &docs); err != nil {
				t.Fatal(err)
			}
			docs[0].Ord = -1 // dead ord without a Dead entry
			out, _ := json.Marshal(docs)
			return out
		}, false},
		{"bit-rot", "s1/q8", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)/2] ^= 0x01
			return out
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sections := resection(t, good)
			patchSection(t, sections, tc.section, tc.mangle)
			bad := filepath.Join(t.TempDir(), "bad.lsnp")
			if err := snapfile.Write(bad, sections); err != nil {
				t.Fatal(err)
			}
			if tc.name == "bit-rot" {
				// Re-writing recomputes CRCs; flip the byte in the final
				// file instead so the stored CRC disagrees.
				f, err := snapfile.Open(bad)
				if err != nil {
					t.Fatal(err)
				}
				f.Close()
				flipPayloadByte(t, bad, "s1/q8")
			}
			if r2, f, err := Restore(bad, Config{}, tc.verify); err == nil {
				closeRouter(t, r2)
				f.Close()
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}

// flipPayloadByte flips one byte inside the named section of an
// on-disk container without recomputing its CRC.
func flipPayloadByte(t *testing.T, path, name string) {
	t.Helper()
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := f.Section(name)
	if !ok {
		t.Fatalf("section %q missing", name)
	}
	off, n := f.SectionOffset(name), len(b)
	f.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off+int64(n)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
