package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
)

func synthFixture(t *testing.T, docs, k int) (*corpus.Collection, *core.Model, [][]float64) {
	t.Helper()
	synth := corpus.GenerateSynth(corpus.SynthOptions{Seed: 9, Docs: docs, Topics: 5})
	coll := synth.Collection
	model, err := core.BuildCollection(coll, core.Config{K: k, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	raws := make([][]float64, 0, len(synth.Queries))
	for _, q := range synth.Queries {
		raws = append(raws, coll.QueryVector(q.Text))
	}
	if len(raws) < 4 {
		t.Fatalf("fixture produced only %d queries", len(raws))
	}
	return coll, model, raws
}

func closeRouter(t *testing.T, r *Router) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatalf("router close: %v", err)
	}
}

// sameHits compares merged results byte-for-byte on everything placement
// cannot change: identity, text and the exact score bits. Shard indices
// legitimately differ between layouts.
func sameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Text != want[i].Text ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: hit %d: got {%s %v}, want {%s %v}",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestRouterSearchParity pins the tentpole claim on the static corpus:
// for every shard count, scatter–gather results are byte-identical to a
// plain single engine over the same collection, for both single and
// batch queries.
func TestRouterSearchParity(t *testing.T) {
	coll, model, raws := synthFixture(t, 60, 8)
	ref, err := engine.New(coll, model, engine.Config{BatchTick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ref.Close(ctx)
	}()
	const topK = 10
	want := make([][]Hit, len(raws))
	snap := ref.Snapshot()
	for qi, raw := range raws {
		ranked := snap.RankTop(raw, topK)
		want[qi] = make([]Hit, len(ranked))
		for i, rk := range ranked {
			d := snap.Doc(rk.Doc)
			want[qi][i] = Hit{ID: d.ID, Text: d.Text, Score: rk.Score}
		}
		if len(want[qi]) == 0 {
			t.Fatalf("query %d ranked nothing", qi)
		}
	}

	for _, shards := range []int{1, 2, 3, 5} {
		r, err := New(coll, model, Config{Shards: shards, Engine: engine.Config{BatchTick: time.Millisecond}})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		for qi, raw := range raws {
			got, gens := r.Search(raw, topK)
			if len(gens) != shards {
				t.Fatalf("%d shards: generation vector has %d entries", shards, len(gens))
			}
			sameHits(t, fmt.Sprintf("%d shards, query %d", shards, qi), got, want[qi])
		}
		batch, _ := r.SearchBatch(raws, topK)
		if len(batch) != len(raws) {
			t.Fatalf("%d shards: batch returned %d rows", shards, len(batch))
		}
		for qi := range raws {
			sameHits(t, fmt.Sprintf("%d shards, batch row %d", shards, qi), batch[qi], want[qi])
		}
		closeRouter(t, r)
	}
}

// TestRouterParityAcrossSubmitsAndCompaction drives two routers — one
// shard vs three — through identical submission sequences and two
// coordinated compaction cycles, checking byte parity after every step.
// The 1-shard side is anchored to ground truth by the engine and core
// parity tests (external compaction ≡ UpdateDocs, distributed plan ≡
// UpdateDocs); this test closes the loop N-shard ≡ 1-shard.
func TestRouterParityAcrossSubmitsAndCompaction(t *testing.T) {
	coll, model, raws := synthFixture(t, 40, 6)
	mk := func(shards int) *Router {
		r, err := New(coll, model, Config{Shards: shards, Engine: engine.Config{BatchTick: time.Millisecond}})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		return r
	}
	r1, r3 := mk(1), mk(3)
	defer closeRouter(t, r1)
	defer closeRouter(t, r3)

	const topK = 15
	check := func(stage string) {
		t.Helper()
		for qi, raw := range raws {
			h1, _ := r1.Search(raw, topK)
			h3, _ := r3.Search(raw, topK)
			sameHits(t, fmt.Sprintf("%s query %d", stage, qi), h3, h1)
		}
		b1, _ := r1.SearchBatch(raws, topK)
		b3, _ := r3.SearchBatch(raws, topK)
		for qi := range raws {
			sameHits(t, fmt.Sprintf("%s batch row %d", stage, qi), b3[qi], b1[qi])
		}
	}

	check("static")
	ctx := context.Background()
	next := 0
	for wave := 0; wave < 2; wave++ {
		for i := 0; i < 6; i++ {
			doc := corpus.Document{
				ID:   fmt.Sprintf("new-%02d", next),
				Text: coll.Docs[next%coll.Size()].Text,
			}
			next++
			if _, _, err := r1.Submit(ctx, doc); err != nil {
				t.Fatalf("wave %d: r1 submit: %v", wave, err)
			}
			if _, _, err := r3.Submit(ctx, doc); err != nil {
				t.Fatalf("wave %d: r3 submit: %v", wave, err)
			}
		}
		check(fmt.Sprintf("wave %d folded", wave))
		if st := r3.Stats(); st.FoldedDocuments == 0 {
			t.Fatalf("wave %d: no folded documents before compaction", wave)
		}
		if err := r1.Compact(); err != nil {
			t.Fatalf("wave %d: r1 compact: %v", wave, err)
		}
		if err := r3.Compact(); err != nil {
			t.Fatalf("wave %d: r3 compact: %v", wave, err)
		}
		for _, r := range []*Router{r1, r3} {
			st := r.Stats()
			if st.FoldedDocuments != 0 {
				t.Fatalf("wave %d: %d shards: %d folded after compaction", wave, st.Shards, st.FoldedDocuments)
			}
			if st.Compactions != int64(wave+1) {
				t.Fatalf("wave %d: %d shards: %d compactions", wave, st.Shards, st.Compactions)
			}
			if st.Documents != coll.Size()+next {
				t.Fatalf("wave %d: %d shards: %d documents, want %d", wave, st.Shards, st.Documents, coll.Size()+next)
			}
		}
		check(fmt.Sprintf("wave %d compacted", wave))
	}
	// An empty compaction cycle is a no-op, not an error or a count bump.
	if err := r3.Compact(); err != nil {
		t.Fatalf("empty compact: %v", err)
	}
	if st := r3.Stats(); st.Compactions != 2 {
		t.Fatalf("empty compact bumped count to %d", st.Compactions)
	}
}

// TestRouterIDRegistry: duplicate user IDs are rejected globally (409 on
// any shard, including against the seed corpus), auto IDs are globally
// unique, round-robin placed, and skip over user-taken names.
func TestRouterIDRegistry(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 3, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	ctx := context.Background()
	text := coll.Docs[0].Text

	if _, _, err := r.Submit(ctx, corpus.Document{ID: "alpha", Text: text}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Submit(ctx, corpus.Document{ID: "alpha", Text: text}); !errors.Is(err, engine.ErrDuplicateID) {
		t.Fatalf("duplicate user id: %v", err)
	}
	if _, _, err := r.Submit(ctx, corpus.Document{ID: coll.Docs[7].ID, Text: text}); !errors.Is(err, engine.ErrDuplicateID) {
		t.Fatalf("duplicate seed id: %v", err)
	}

	// Take the next auto name by hand; auto assignment must skip it.
	taken := fmt.Sprintf("doc-%d", coll.Size())
	if _, _, err := r.Submit(ctx, corpus.Document{ID: taken, Text: text}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 9; i++ {
		id, shard, err := r.Submit(ctx, corpus.Document{Text: text})
		if err != nil {
			t.Fatalf("auto submit %d: %v", i, err)
		}
		if id == "" || id == taken || seen[id] {
			t.Fatalf("auto submit %d: id %q reused or empty", i, id)
		}
		seen[id] = true
		if want := i % 3; shard != want {
			t.Fatalf("auto submit %d landed on shard %d, want round-robin %d", i, shard, want)
		}
	}
}

// TestRouterPerShardQueueFull: backpressure is per owner shard — a full
// queue on one shard rejects with that shard's depth/capacity while the
// others keep accepting.
func TestRouterPerShardQueueFull(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	// BatchTick a minute: the queues never drain during the test.
	r, err := New(coll, model, Config{Shards: 2, Engine: engine.Config{QueueSize: 2, BatchTick: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)

	// Mine IDs that hash to each shard so placement is forced.
	idOn := func(shard int) func() string {
		n := 0
		return func() string {
			for {
				id := fmt.Sprintf("qf-%d-%d", shard, n)
				n++
				if hashShard(id, 2) == shard {
					return id
				}
			}
		}
	}
	on0, on1 := idOn(0), idOn(1)
	expired, cancel := context.WithCancel(context.Background())
	cancel() // fire-and-forget: enqueue, don't wait for the fold
	text := coll.Docs[0].Text

	for i := 0; i < 2; i++ {
		if _, _, err := r.Submit(expired, corpus.Document{ID: on0(), Text: text}); !errors.Is(err, context.Canceled) {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	full := on0()
	_, _, err = r.Submit(expired, corpus.Document{ID: full, Text: text})
	var qf *QueueFullError
	if !errors.As(err, &qf) || !errors.Is(err, engine.ErrQueueFull) {
		t.Fatalf("overflow submit: %v", err)
	}
	if qf.Shard != 0 || qf.Capacity != 2 || qf.Depth != 2 {
		t.Fatalf("queue-full detail: %+v", qf)
	}
	// The other shard is unaffected.
	if _, _, err := r.Submit(expired, corpus.Document{ID: on1(), Text: text}); !errors.Is(err, context.Canceled) {
		t.Fatalf("other shard rejected: %v", err)
	}
	// The rejected ID was rolled back in the registry: retrying reports
	// queue-full again, not a duplicate.
	if _, _, err := r.Submit(expired, corpus.Document{ID: full, Text: text}); !errors.Is(err, engine.ErrQueueFull) {
		t.Fatalf("retry after rollback: %v", err)
	}
}

// TestRouterMonitorCompacts: the background monitor notices global
// orthogonality drift and runs a coordinated compaction on its own.
func TestRouterMonitorCompacts(t *testing.T) {
	coll, model, raws := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{
		Shards:           2,
		Engine:           engine.Config{BatchTick: time.Millisecond},
		CompactThreshold: 1e-9,
		CompactCheck:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, _, err := r.Submit(ctx, corpus.Document{Text: coll.Docs[i].Text}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second) //lsilint:ignore walltime test deadline
	for {
		st := r.Stats()
		if st.Compactions >= 1 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) { //lsilint:ignore walltime test deadline
			t.Fatalf("monitor never compacted: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if hits, _ := r.Search(raws[0], 5); len(hits) == 0 {
		t.Fatal("no hits after monitor compaction")
	}
}

// TestRouterCloseDrains: Close publishes every acknowledged document —
// including fire-and-forget submissions still queued — before returning,
// and further submits report closed.
func TestRouterCloseDrains(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 3, Engine: engine.Config{BatchTick: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	const extra = 9
	for i := 0; i < extra; i++ {
		_, _, err := r.Submit(expired, corpus.Document{ID: fmt.Sprintf("drain-%d", i), Text: coll.Docs[i].Text})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	closeRouter(t, r)
	if st := r.Stats(); st.Documents != coll.Size()+extra {
		t.Fatalf("after drain: %d documents, want %d", st.Documents, coll.Size()+extra)
	}
	if _, _, err := r.Submit(context.Background(), corpus.Document{Text: "late"}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	closeRouter(t, r) // idempotent
}

// TestRouterDeleteReleasesIDs pins the registry fix: deletion routes to
// the owner shard and releases the ID, so re-submission after delete is
// accepted — in both orders (submit→409→delete→201 and delete-unknown→
// submit→201) — for user IDs, auto IDs, and seed-corpus IDs alike.
func TestRouterDeleteReleasesIDs(t *testing.T) {
	coll, model, raws := synthFixture(t, 40, 6)
	r, err := New(coll, model, Config{Shards: 3, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeRouter(t, r)
	ctx := context.Background()
	text := coll.Docs[0].Text

	// Order A: submit, duplicate rejected, delete, resubmit accepted.
	_, submitShard, err := r.Submit(ctx, corpus.Document{ID: "alpha", Text: text})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Submit(ctx, corpus.Document{ID: "alpha", Text: text}); !errors.Is(err, engine.ErrDuplicateID) {
		t.Fatalf("duplicate before delete: %v", err)
	}
	delShard, err := r.Delete(ctx, "alpha")
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if delShard != submitShard {
		t.Fatalf("delete routed to shard %d, owner is %d", delShard, submitShard)
	}
	if _, _, err := r.Submit(ctx, corpus.Document{ID: "alpha", Text: text}); err != nil {
		t.Fatalf("resubmit after delete: %v", err)
	}

	// Order B: deleting a never-submitted ID is unknown; the probe must
	// not block the subsequent submit.
	if _, err := r.Delete(ctx, "beta"); !errors.Is(err, engine.ErrUnknownID) {
		t.Fatalf("delete of unknown id: %v", err)
	}
	if _, _, err := r.Submit(ctx, corpus.Document{ID: "beta", Text: text}); err != nil {
		t.Fatalf("submit after unknown delete: %v", err)
	}

	// Auto IDs resolve to their round-robin owner, not a hash.
	autoID, autoShard, err := r.Submit(ctx, corpus.Document{Text: text})
	if err != nil {
		t.Fatal(err)
	}
	if s, err := r.Delete(ctx, autoID); err != nil || s != autoShard {
		t.Fatalf("auto-id delete: shard %d err %v, owner is %d", s, err, autoShard)
	}
	if _, err := r.Delete(ctx, autoID); !errors.Is(err, engine.ErrUnknownID) {
		t.Fatalf("double delete: %v", err)
	}

	// Seed-corpus documents are deletable too, and vanish from results
	// immediately.
	seedID := coll.Docs[3].ID
	if _, err := r.Delete(ctx, seedID); err != nil {
		t.Fatalf("seed delete: %v", err)
	}
	hits, _ := r.Search(raws[0], coll.Size())
	for _, h := range hits {
		if h.ID == seedID || h.ID == autoID {
			t.Fatalf("deleted doc %s still retrievable", h.ID)
		}
	}
	// alpha's first (pre-re-add) row, the auto doc, and the seed doc are
	// dead; beta and alpha's second row are live.
	if st := r.Stats(); st.Tombstones != 3 {
		t.Fatalf("tombstones %d want 3", st.Tombstones)
	}
}

// TestRouterDeleteParityAcrossShardCounts extends the N-shard ≡ 1-shard
// pin to the deletion lifecycle: identical submit/delete scripts on a
// 1-shard and a 3-shard router stay byte-identical through the tombstone
// phase, through coordinated compactions that fold the dead rows out
// (pending absorption and the pure-downdate cycle both), and through
// re-adds of deleted IDs. The 1-shard side is anchored to a never-
// inserted engine by the engine-level delete suite, closing the loop.
func TestRouterDeleteParityAcrossShardCounts(t *testing.T) {
	coll, model, raws := synthFixture(t, 40, 6)
	mk := func(shards int) *Router {
		r, err := New(coll, model, Config{Shards: shards, Engine: engine.Config{BatchTick: time.Millisecond}})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		return r
	}
	r1, r3 := mk(1), mk(3)
	defer closeRouter(t, r1)
	defer closeRouter(t, r3)
	both := []*Router{r1, r3}

	const topK = 20
	check := func(stage string) {
		t.Helper()
		for qi, raw := range raws {
			h1, _ := r1.Search(raw, topK)
			h3, _ := r3.Search(raw, topK)
			sameHits(t, fmt.Sprintf("%s query %d", stage, qi), h3, h1)
		}
	}
	ctx := context.Background()
	submitBoth := func(id, text string) {
		t.Helper()
		for _, r := range both {
			if _, _, err := r.Submit(ctx, corpus.Document{ID: id, Text: text}); err != nil {
				t.Fatalf("submit %s: %v", id, err)
			}
		}
	}
	deleteBoth := func(id string) {
		t.Helper()
		for _, r := range both {
			if _, err := r.Delete(ctx, id); err != nil {
				t.Fatalf("delete %s: %v", id, err)
			}
		}
	}
	compactBoth := func(stage string, wantTomb int) {
		t.Helper()
		for _, r := range both {
			if err := r.Compact(); err != nil {
				t.Fatalf("%s compact: %v", stage, err)
			}
			st := r.Stats()
			if st.FoldedDocuments != 0 || st.Tombstones != wantTomb {
				t.Fatalf("%s: %d shards: folded=%d tombstones=%d (want 0/%d)",
					stage, st.Shards, st.FoldedDocuments, st.Tombstones, wantTomb)
			}
		}
	}

	// Wave 1: fold in six, tombstone two of them plus two seed docs.
	for i := 0; i < 6; i++ {
		submitBoth(fmt.Sprintf("new-%02d", i), coll.Docs[i].Text)
	}
	for _, id := range []string{"new-01", "new-04", coll.Docs[2].ID, coll.Docs[17].ID} {
		deleteBoth(id)
	}
	if st := r3.Stats(); st.Tombstones != 4 || st.Documents != coll.Size()+6-4 {
		t.Fatalf("tombstone phase: %+v", st)
	}
	check("tombstoned")
	compactBoth("wave 1", 0)
	check("wave 1 compacted")
	for _, r := range both {
		if st := r.Stats(); st.Documents != coll.Size()+2 {
			t.Fatalf("wave 1: %d shards: %d documents want %d", st.Shards, st.Documents, coll.Size()+2)
		}
	}

	// Wave 2: re-add a deleted ID (must be accepted on every layout),
	// then a pure-downdate cycle: no pending, only tombstones.
	submitBoth("new-01", coll.Docs[9].Text)
	check("re-added")
	compactBoth("wave 2", 0)
	deleteBoth(coll.Docs[11].ID)
	check("post-compaction tombstone")
	compactBoth("pure downdate", 0)
	check("pure downdate compacted")

	// Physical layout agrees: no deleted doc survives anywhere.
	goneByID := map[string]bool{"new-04": true, coll.Docs[2].ID: true, coll.Docs[17].ID: true, coll.Docs[11].ID: true}
	for _, r := range both {
		for s := 0; s < r.Shards(); s++ {
			snap := r.ShardSnapshot(s)
			for j := 0; j < snap.NumDocs(); j++ {
				if goneByID[snap.Doc(j).ID] {
					t.Fatalf("%d shards: deleted doc %s physically present", r.Shards(), snap.Doc(j).ID)
				}
			}
		}
	}
}

// TestRouterRejectsBadShapes: construction guards.
func TestRouterRejectsBadShapes(t *testing.T) {
	coll, model, _ := synthFixture(t, 40, 6)
	if _, err := New(coll, model, Config{Shards: 41}); err == nil {
		t.Fatal("more shards than documents accepted")
	}
	small := coll.Subset([]int{0, 1, 2})
	if _, err := New(small, model, Config{Shards: 2}); err == nil {
		t.Fatal("model/collection size mismatch accepted")
	}
}
