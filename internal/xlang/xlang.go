// Package xlang implements the Landauer–Littman cross-language retrieval
// method of §5.4: train an LSI space on dual-language combined abstracts,
// fold monolingual documents into the joint space, and match queries in
// either language against documents in any language — "there is no
// difficult translation involved in retrieval from the multilingual LSI
// space."
package xlang

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/weight"
)

// Index is a joint-language LSI space with folded-in monolingual documents.
type Index struct {
	Model *core.Model
	// Training is the dual-abstract collection that defined the space (and
	// the vocabulary).
	Training *corpus.Collection
	// Docs are the monolingual documents folded into the space, in fold
	// order; their k-space vectors are rows Training.Size()+i of Model.V.
	Docs []corpus.Document
}

// Config parameterizes Build.
type Config struct {
	K      int
	Scheme weight.Scheme
	Seed   int64
}

// Build trains the joint space on the dual-language collection and folds in
// the monolingual documents.
func Build(training *corpus.Collection, mono []corpus.Document, cfg Config) (*Index, error) {
	m, err := core.BuildCollection(training, core.Config{K: cfg.K, Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("xlang: %w", err)
	}
	ix := &Index{Model: m, Training: training}
	ix.Add(mono)
	return ix, nil
}

// Add folds additional monolingual documents into the space.
func (ix *Index) Add(docs []corpus.Document) {
	if len(docs) == 0 {
		return
	}
	ix.Model.FoldInDocs(ix.Training.DocVectors(docs))
	ix.Docs = append(ix.Docs, docs...)
}

// Ranked is one scored monolingual document.
type Ranked struct {
	Doc   int // index into ix.Docs
	Score float64
}

// Query ranks the folded-in monolingual documents against a query in any
// language the training vocabulary covers.
func (ix *Index) Query(q string) []Ranked {
	qhat := ix.Model.ProjectQuery(ix.Training.QueryVector(q))
	base := ix.Training.Size()
	out := make([]Ranked, len(ix.Docs))
	for i := range ix.Docs {
		out[i] = Ranked{Doc: i, Score: dense.Cosine(qhat, ix.Model.DocVector(base+i))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

// Ranking returns just the document indices of Query in rank order.
func (ix *Index) Ranking(q string) []int {
	r := ix.Query(q)
	out := make([]int, len(r))
	for i, x := range r {
		out[i] = x.Doc
	}
	return out
}
