package xlang

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func fixture(t *testing.T) (*corpus.Bilingual, *Index) {
	t.Helper()
	b := corpus.GenerateBilingual(corpus.BilingualOptions{
		Seed: 7, Topics: 5, TrainingDocs: 80, MonoDocs: 30, Queries: 5,
	})
	mono := append(append([]corpus.Document(nil), b.MonoEN...), b.MonoFR...)
	ix, err := Build(b.Training, mono, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b, ix
}

func TestBuildFoldsAllMonoDocs(t *testing.T) {
	b, ix := fixture(t)
	want := len(b.MonoEN) + len(b.MonoFR)
	if len(ix.Docs) != want {
		t.Fatalf("folded %d docs want %d", len(ix.Docs), want)
	}
	if ix.Model.NumDocs() != b.Training.Size()+want {
		t.Fatalf("model docs %d", ix.Model.NumDocs())
	}
}

// The headline claim of §5.4: an English query retrieves the French
// documents of its topic even though they share no string — precision at
// the topic size should be far above chance.
func TestCrossLanguageRetrieval(t *testing.T) {
	b, ix := fixture(t)
	nEN := len(b.MonoEN)
	perTopic := len(b.MonoFR) / b.Options.Topics

	var correct, totalJudged int
	for qi, q := range b.QueriesEN {
		topic := b.QueryTopicEN[qi]
		ranked := ix.Query(q.Text)
		// Consider only FR documents (indices ≥ nEN) in rank order.
		seen := 0
		for _, r := range ranked {
			if r.Doc < nEN {
				continue
			}
			frIdx := r.Doc - nEN
			if seen < perTopic {
				totalJudged++
				if b.MonoFRTopic[frIdx] == topic {
					correct++
				}
			}
			seen++
			if seen >= perTopic {
				break
			}
		}
	}
	precision := float64(correct) / float64(totalJudged)
	chance := 1.0 / float64(b.Options.Topics)
	if precision < 3*chance {
		t.Fatalf("cross-language precision %v not above 3×chance %v", precision, chance)
	}
	if precision < 0.8 {
		t.Fatalf("cross-language precision %v below 0.8", precision)
	}
}

// Within-language retrieval also works in the joint space.
func TestSameLanguageRetrieval(t *testing.T) {
	b, ix := fixture(t)
	nEN := len(b.MonoEN)
	q := b.QueriesEN[0]
	topic := b.QueryTopicEN[0]
	ranked := ix.Query(q.Text)
	// The top-ranked EN document should share the query topic.
	for _, r := range ranked {
		if r.Doc < nEN {
			if b.MonoENTopic[r.Doc] != topic {
				t.Fatalf("top EN doc topic %d want %d", b.MonoENTopic[r.Doc], topic)
			}
			return
		}
	}
	t.Fatal("no EN document ranked")
}

func TestAddIncremental(t *testing.T) {
	b, _ := fixture(t)
	ix, err := Build(b.Training, nil, Config{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Docs) != 0 {
		t.Fatal("expected no docs before Add")
	}
	ix.Add(b.MonoEN[:5])
	ix.Add(b.MonoFR[:5])
	if len(ix.Docs) != 10 {
		t.Fatalf("docs %d want 10", len(ix.Docs))
	}
	if got := ix.Ranking(b.QueriesEN[0].Text); len(got) != 10 {
		t.Fatalf("ranking len %d", len(got))
	}
}

func TestQueryRankingSorted(t *testing.T) {
	b, ix := fixture(t)
	r := ix.Query(b.QueriesFR[0].Text)
	for i := 1; i < len(r); i++ {
		if r[i-1].Score < r[i].Score {
			t.Fatal("ranking not sorted")
		}
	}
}

// §5.4's generalization: the joint space works for any number of languages
// at once — every query language retrieves every document language.
func TestTrilingualRetrieval(t *testing.T) {
	ml := corpus.GenerateMultilingual(corpus.MultilingualOptions{Seed: 9})
	var mono []corpus.Document
	offsets := map[string]int{}
	var langOrder []string
	for _, lang := range ml.Languages {
		offsets[lang] = len(mono)
		mono = append(mono, ml.Mono[lang]...)
		langOrder = append(langOrder, lang)
	}
	ix, err := Build(ml.Training, mono, Config{K: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perTopic := ml.Options.MonoDocsPerLang / ml.Options.Topics
	for _, qLang := range langOrder {
		for _, dLang := range langOrder {
			if qLang == dLang {
				continue
			}
			var correct, total int
			for qi, q := range ml.Queries[qLang] {
				topic := ml.QueryTopic[qLang][qi]
				seen := 0
				for _, r := range ix.Query(q) {
					di := r.Doc - offsets[dLang]
					if di < 0 || di >= len(ml.Mono[dLang]) {
						continue
					}
					total++
					if ml.MonoTopic[dLang][di] == topic {
						correct++
					}
					seen++
					if seen >= perTopic {
						break
					}
				}
			}
			prec := float64(correct) / float64(total)
			if prec < 0.8 {
				t.Fatalf("%s→%s precision %v below 0.8", qLang, dLang, prec)
			}
		}
	}
}

func TestMultilingualNoSharedStrings(t *testing.T) {
	ml := corpus.GenerateMultilingual(corpus.MultilingualOptions{Seed: 10})
	for _, d := range ml.Mono["en"] {
		for _, other := range []string{"fr", "el"} {
			if strings.Contains(d.Text, other+"t") {
				t.Fatalf("en doc leaks %s word", other)
			}
		}
	}
}
