package synonym

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func fixture(t *testing.T) (*corpus.Synth, *Benchmark, *core.Model) {
	t.Helper()
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 11, Topics: 8, Docs: 160, DocLen: 40,
		SynonymsPerConcept: 3, DocVariantLoyalty: 0.95,
	})
	b := GenerateBenchmark(s, 40, 1)
	m, err := core.BuildCollection(s.Collection, core.Config{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s, b, m
}

func TestBenchmarkWellFormed(t *testing.T) {
	_, b, _ := fixture(t)
	if len(b.Items) < 20 {
		t.Fatalf("only %d items generated", len(b.Items))
	}
	for _, it := range b.Items {
		if len(it.Alternatives) != 4 {
			t.Fatalf("item has %d alternatives", len(it.Alternatives))
		}
		if it.Answer < 0 || it.Answer >= 4 {
			t.Fatalf("answer index %d", it.Answer)
		}
		for _, a := range it.Alternatives {
			if a == it.Stem {
				t.Fatal("stem appears among alternatives")
			}
		}
		seen := map[string]bool{}
		for _, a := range it.Alternatives {
			if seen[a] {
				t.Fatal("duplicate alternative")
			}
			seen[a] = true
		}
	}
}

func TestBenchmarkDeterministic(t *testing.T) {
	s := corpus.GenerateSynth(corpus.SynthOptions{Seed: 11, Topics: 8, Docs: 160})
	b1 := GenerateBenchmark(s, 20, 5)
	b2 := GenerateBenchmark(s, 20, 5)
	if len(b1.Items) != len(b2.Items) {
		t.Fatal("nondeterministic item count")
	}
	for i := range b1.Items {
		if b1.Items[i].Stem != b2.Items[i].Stem || b1.Items[i].Answer != b2.Items[i].Answer {
			t.Fatal("nondeterministic items")
		}
	}
}

// The paper's TOEFL result in shape: LSI scores far above chance (25%) and
// beats word overlap, because generated synonyms are interchangeable (and
// therefore rarely co-occur) while sharing contexts.
func TestLSIBeatsWordOverlap(t *testing.T) {
	_, b, m := fixture(t)
	lsi, err := ScoreLSI(b, m)
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := ScoreWordOverlap(b)
	if err != nil {
		t.Fatal(err)
	}
	if lsi < 0.5 {
		t.Fatalf("LSI synonym accuracy %v below 0.5", lsi)
	}
	if lsi <= overlap {
		t.Fatalf("LSI %v should beat word overlap %v", lsi, overlap)
	}
}

func TestEmptyBenchmarkErrors(t *testing.T) {
	_, _, m := fixture(t)
	empty := &Benchmark{Items: nil}
	if _, err := ScoreLSI(empty, m); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ScoreWordOverlap(empty); err == nil {
		t.Fatal("expected error")
	}
}

func TestNearestTerms(t *testing.T) {
	s, _, m := fixture(t)
	// Pick a synonym group whose members are all indexed.
	for _, g := range s.SynonymGroups {
		allIn := true
		for _, w := range g {
			if _, ok := s.Vocab.Index[w]; !ok {
				allIn = false
				break
			}
		}
		if !allIn {
			continue
		}
		near, err := NearestTerms(m, s.Vocab, g[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(near) != 10 {
			t.Fatalf("got %d neighbours", len(near))
		}
		// The automatic-thesaurus property (§5.4): nearest terms are
		// *associatively* related — like "algebra" being near "topology"
		// and "theorem" — which here means sharing the stem's topic. The
		// generated word ids encode the topic as a "tNN" prefix.
		topic := g[0][:3]
		sameTopic := 0
		for _, w := range near {
			if len(w) >= 3 && w[:3] == topic {
				sameTopic++
			}
		}
		if sameTopic < 7 {
			t.Fatalf("only %d/10 nearest terms of %q share its topic: %v", sameTopic, g[0], near)
		}
		return
	}
	t.Skip("no fully indexed synonym group in fixture")
}

func TestNearestTermsUnknownWord(t *testing.T) {
	s, _, m := fixture(t)
	if _, err := NearestTerms(m, s.Vocab, "nonexistent", 3); err == nil {
		t.Fatal("expected error for unknown term")
	}
}
