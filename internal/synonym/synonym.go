// Package synonym implements the TOEFL-style synonym test of Landauer &
// Dumais (§5.4 Modeling Human Memory): given a stem word and alternatives,
// pick the alternative whose LSI term vector is nearest the stem. The
// word-overlap baseline picks the alternative with the highest document
// co-occurrence — the paper reports LSI at 64% correct versus 33% for
// word overlap.
package synonym

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/text"
)

// Item is one multiple-choice question: a stem and alternatives, with
// Answer the index of the correct alternative.
type Item struct {
	Stem         string
	Alternatives []string
	Answer       int
}

// Benchmark couples a collection with test items over its vocabulary.
type Benchmark struct {
	Collection *corpus.Collection
	Items      []Item
}

// GenerateBenchmark builds a synonym test from a synthetic collection's
// ground-truth synonym groups: the stem and correct answer come from the
// same group; distractors are drawn from other topics. Items whose words
// fell out of the indexed vocabulary are skipped.
func GenerateBenchmark(s *corpus.Synth, nItems int, seed int64) *Benchmark {
	rng := rand.New(rand.NewSource(seed + 0x70ef1))
	vocabHas := func(w string) bool {
		_, ok := s.Vocab.Index[w]
		return ok
	}
	var items []Item
	groups := s.SynonymGroups
	for attempt := 0; attempt < nItems*20 && len(items) < nItems; attempt++ {
		g := groups[rng.Intn(len(groups))]
		if len(g) < 2 {
			continue
		}
		stem := g[rng.Intn(len(g))]
		answer := g[rng.Intn(len(g))]
		for answer == stem {
			answer = g[rng.Intn(len(g))]
		}
		if !vocabHas(stem) || !vocabHas(answer) {
			continue
		}
		// Three distractors from other groups.
		alts := []string{answer}
		for len(alts) < 4 {
			og := groups[rng.Intn(len(groups))]
			w := og[rng.Intn(len(og))]
			if w == stem || !vocabHas(w) || sameGroup(groups, stem, w) || contains(alts, w) {
				continue
			}
			alts = append(alts, w)
		}
		// Shuffle alternatives, tracking the answer.
		perm := rng.Perm(4)
		shuffled := make([]string, 4)
		ansIdx := 0
		for to, from := range perm {
			shuffled[to] = alts[from]
			if from == 0 {
				ansIdx = to
			}
		}
		items = append(items, Item{Stem: stem, Alternatives: shuffled, Answer: ansIdx})
	}
	return &Benchmark{Collection: s.Collection, Items: items}
}

func sameGroup(groups [][]string, a, b string) bool {
	for _, g := range groups {
		var hasA, hasB bool
		for _, w := range g {
			if w == a {
				hasA = true
			}
			if w == b {
				hasB = true
			}
		}
		if hasA && hasB {
			return true
		}
	}
	return false
}

func contains(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}

// ScoreLSI answers every item by maximum term–term cosine in the model's
// k-space and returns the fraction correct.
func ScoreLSI(b *Benchmark, m *core.Model) (float64, error) {
	if len(b.Items) == 0 {
		return 0, fmt.Errorf("synonym: empty benchmark")
	}
	idx := b.Collection.Vocab.Index
	correct := 0
	for _, it := range b.Items {
		si, ok := idx[it.Stem]
		if !ok {
			continue
		}
		best, bestScore := -1, -2.0
		for a, alt := range it.Alternatives {
			ai, ok := idx[alt]
			if !ok {
				continue
			}
			if s := m.TermSimilarity(si, ai); s > bestScore {
				bestScore, best = s, a
			}
		}
		if best == it.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(b.Items)), nil
}

// ScoreWordOverlap is the baseline: pick the alternative that co-occurs in
// the most documents with the stem (raw row overlap). True synonyms rarely
// co-occur — "words which occur in similar patterns of documents will be
// near each other in the LSI space even if they never co-occur" — so this
// baseline fails exactly where LSI succeeds.
func ScoreWordOverlap(b *Benchmark) (float64, error) {
	if len(b.Items) == 0 {
		return 0, fmt.Errorf("synonym: empty benchmark")
	}
	td := b.Collection.TD
	idx := b.Collection.Vocab.Index
	rowDocs := func(i int) map[int]bool {
		out := map[int]bool{}
		td.Row(i, func(j int, v float64) {
			if v > 0 {
				out[j] = true
			}
		})
		return out
	}
	correct := 0
	for _, it := range b.Items {
		si, ok := idx[it.Stem]
		if !ok {
			continue
		}
		stemDocs := rowDocs(si)
		best, bestScore := -1, -1
		for a, alt := range it.Alternatives {
			ai, ok := idx[alt]
			if !ok {
				continue
			}
			overlap := 0
			for d := range rowDocs(ai) {
				if stemDocs[d] {
					overlap++
				}
			}
			if overlap > bestScore {
				bestScore, best = overlap, a
			}
		}
		if best == it.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(b.Items)), nil
}

// NearestTerms returns the n terms closest to the given term in k-space —
// the "online thesaurus automatically constructed by LSI" of §5.4.
func NearestTerms(m *core.Model, vocab *text.Vocabulary, term string, n int) ([]string, error) {
	i, ok := vocab.Index[term]
	if !ok {
		return nil, fmt.Errorf("synonym: %q not in vocabulary", term)
	}
	type scored struct {
		term  string
		score float64
	}
	var all []scored
	for j, w := range vocab.Terms {
		if j == i {
			continue
		}
		all = append(all, scored{w, m.TermSimilarity(i, j)})
	}
	// Partial selection of the n best.
	out := make([]string, 0, n)
	for len(out) < n && len(all) > 0 {
		best := 0
		for x := 1; x < len(all); x++ {
			if all[x].score > all[best].score {
				best = x
			}
		}
		out = append(out, all[best].term)
		all[best] = all[len(all)-1]
		all = all[:len(all)-1]
	}
	return out, nil
}
