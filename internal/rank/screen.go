package rank

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/dense"
)

// Two-stage exact top-k: a float32 screening mirror of the normalized
// document cache is scanned first (half the memory traffic, unrolled
// float32 dot products), and only rows whose screened score could — under
// a provable rounding bound — still reach the running kth-best are
// rescored with the float64 kernels. The final result is byte-identical
// to the pure float64 path (pinned by test): the rescore uses exactly the
// dense.Dot the exact path uses, and the candidate set provably contains
// every true top-k row.
//
// The bound, per document row v (float64, unit-normalized) with float32
// mirror v32, query qn (float64, unit-normalized) with mirror q32:
//
//	|fl64(qn·v) − fl32(q32·v32)|
//	  ≤ γ64·‖qn‖·‖v‖            (float64 summation rounding)
//	  + ‖qn‖·‖v − v32‖          (row quantization, Cauchy–Schwarz)
//	  + ‖qn − q32‖·‖v32‖        (query quantization, Cauchy–Schwarz)
//	  + γ32·‖q32‖·‖v32‖         (float32 summation rounding)
//
// with γp = (n+1)·u_p/(1 − (n+1)·u_p) the standard dot-product bound for
// any summation order (u32 = 2⁻²⁴, u64 = 2⁻⁵³). The row residual
// ‖v − v32‖ is computed once per row when the mirror is built or
// extended; everything else collapses to one query-time scalar using
// ‖v‖ ≤ 1 and ‖v32‖ ≤ 1 + maxEps. Both pieces are inflated by boundSlack
// to absorb the float64 rounding of evaluating the bound itself.
//
// Screening then works on certified brackets: lb_i = s32_i − ε_i is a
// lower bound and ub_i = s32_i + ε_i an upper bound on the exact float64
// score of row i. Let L be the kth largest lb. Every true top-k row j has
// s64_j ≥ (kth largest s64) ≥ L, hence ub_j ≥ s64_j ≥ L — so rescoring
// exactly the rows with ub_i ≥ L (ties included, because the comparison
// is ≥) and selecting among them under the usual total order reproduces
// the full float64 selection bit for bit.

// boundSlack inflates every computed error bound so the float64 rounding
// of the bound arithmetic itself (relative error ~1e-16 per operation)
// can never shave a true candidate below the threshold.
const boundSlack = 1 + 1e-9

// screenCutoff is the docs×dim element count below which TopK skips the
// two-stage path: tiny collections fit in cache, where the mirror's
// bandwidth saving cannot pay for the second pass over the score buffer.
const screenCutoff = 1 << 14

// mirror is the float32 screening companion of the float64 cache. Its
// backing slices are allocated with the same element capacity as the
// float64 allocation and extended in lockstep along the same
// capacity-claiming chain, so a single CAS on Engine.claimed guards the
// tails of all three arrays.
//
//lsilint:immutable
type mirror struct {
	docs *dense.MatrixF32 // row-converted float32 copy of the float64 rows
	// eps[i] = ‖row64_i − row32_i‖₂ · boundSlack: the per-row worst-case
	// quantization residual, computed once at build/extend time.
	eps []float64
	// maxEps bounds ‖row32‖ ≤ ‖row64‖ + ‖row64 − row32‖ ≤ 1 + maxEps for
	// every row, monotone along an Extend chain.
	maxEps float64
	// q8 is the optional int8 coarse tier: the symmetric scalar
	// quantization of each float64 row (q8[i][j] = round(row64[i][j] /
	// scale[i]), see dense.QuantizeI8), scanned before the float32 bracket
	// at one byte per coordinate. Nil when the engine carries no int8
	// tier; the bracket machinery is in screen8.go.
	q8 *dense.MatrixI8
	// scale[i] is row i's quantization scale (max|row|/127; 0 for a zero
	// row).
	scale []float64
	// eps8[i] = ‖row64_i − scale_i·q8_i‖₂ · boundSlack: the certified
	// per-row int8 quantization residual — the ε of the coarse bracket.
	eps8 []float64
	// maxEps8 bounds ‖scale_i·q8_i‖ ≤ 1 + maxEps8 for every row, monotone
	// along an Extend chain, like maxEps for the float32 tier.
	maxEps8 float64
}

// buildMirror converts every row of docs, allocating the float32 data —
// and, when withInt8, the int8 tier — plus per-row residuals with
// capacities matching cap(docs.Data) so the mirror can ride the same
// spare-capacity claim chain as the float64 cache. Rows wider than
// dense.MaxI8Dim never get an int8 tier (the integer dot could
// overflow); they keep the two-tier path.
func buildMirror(docs *dense.Matrix, withInt8 bool) *mirror {
	capElems := cap(docs.Data)
	capRows := docs.Rows
	if docs.Cols > 0 {
		capRows = capElems / docs.Cols
	}
	m := &mirror{
		docs: &dense.MatrixF32{Rows: docs.Rows, Cols: docs.Cols,
			Data: make([]float32, len(docs.Data), capElems)},
		eps: make([]float64, docs.Rows, capRows),
	}
	if withInt8 && docs.Cols <= dense.MaxI8Dim {
		m.q8 = &dense.MatrixI8{Rows: docs.Rows, Cols: docs.Cols,
			Data: make([]int8, len(docs.Data), capElems)}
		m.scale = make([]float64, docs.Rows, capRows)
		m.eps8 = make([]float64, docs.Rows, capRows)
	}
	m.fillRows(docs, 0)
	return m
}

// fillRows converts rows [from, docs.Rows) from the float64 cache into
// the mirror's (already sized) slices and folds their residuals into
// maxEps/maxEps8. Callers guarantee exclusive ownership of that row
// range.
func (m *mirror) fillRows(docs *dense.Matrix, from int) {
	for i := from; i < docs.Rows; i++ {
		r64 := docs.Row(i)
		r32 := m.docs.Row(i)
		dense.ConvertF32(r32, r64)
		e := dense.ResidualF32(r64, r32) * boundSlack
		m.eps[i] = e
		if e > m.maxEps {
			m.maxEps = e
		}
		if m.q8 == nil {
			continue
		}
		r8 := m.q8.Row(i)
		s := dense.QuantizeI8(r8, r64)
		m.scale[i] = s
		e8 := dense.ResidualI8(r64, r8, s) * boundSlack
		m.eps8[i] = e8
		if e8 > m.maxEps8 {
			m.maxEps8 = e8
		}
	}
}

// extendShared returns a successor mirror covering docs (the already
// claimed, already written float64 matrix) by writing the new rows into
// this mirror's spare capacity — only the winner of the chain's claim
// CAS may call it, with oldRows the parent's row count.
func (m *mirror) extendShared(docs *dense.Matrix, oldRows int) *mirror {
	next := &mirror{
		docs: &dense.MatrixF32{Rows: docs.Rows, Cols: docs.Cols,
			Data: m.docs.Data[:len(docs.Data)]},
		eps:    m.eps[:docs.Rows],
		maxEps: m.maxEps,
	}
	if m.q8 != nil {
		next.q8 = &dense.MatrixI8{Rows: docs.Rows, Cols: docs.Cols,
			Data: m.q8.Data[:len(docs.Data)]}
		next.scale = m.scale[:docs.Rows]
		next.eps8 = m.eps8[:docs.Rows]
		next.maxEps8 = m.maxEps8
	}
	next.fillRows(docs, oldRows)
	return next
}

// ScreenStats describes what the two-stage path did for one query.
type ScreenStats struct {
	// Screened reports whether the float32 screening pass ran at all; a
	// false value means the exact float64 path served the query directly.
	Screened bool
	// Candidates is how many rows survived screening and were rescored in
	// float64 (k ≤ Candidates ≤ NumDocs when Screened).
	Candidates int
	// Promoted is how many rows the int8 coarse pass promoted to the
	// float32 bracket (Candidates ≤ Promoted when the int8 tier ran;
	// 0 on the two-tier and exact paths).
	Promoted int
	// ClustersTotal is how many IVF cells the engine's index holds; zero
	// when the query ran without a cluster index.
	ClustersTotal int
	// ClustersScanned is how many of those cells the scan actually
	// visited before the certified bound (or the nprobe cap) stopped it.
	ClustersScanned int
	// ScannedRows is how many mirror rows stage 1 touched: all of them on
	// the flat screening path, cluster members plus the unclustered tail
	// on the IVF path.
	ScannedRows int
}

// screenable reports whether a top-k query should take the two-stage
// path: there must be a mirror, the selection must be a strict subset
// (k ≥ n degenerates to a full scan where screening saves nothing), and
// the scan must be big enough for the saved bandwidth to matter.
func (e *Engine) screenable(k int) bool {
	return e.mir != nil && k < e.docs.Rows && e.docs.Cols > 0 &&
		e.docs.Rows*e.docs.Cols >= screenCutoff
}

// screenSlack computes the query-dependent part of the per-row error
// bound: everything in the bracket derivation above except the stored
// per-row residual.
func (e *Engine) screenSlack(qn []float64, q32 []float32) float64 {
	n1 := float64(len(qn) + 1)
	const u32, u64 = 0x1p-24, 0x1p-53
	g32 := n1 * u32 / (1 - n1*u32)
	g64 := n1 * u64 / (1 - n1*u64)
	rq := dense.ResidualF32(qn, q32)
	n32q := dense.Norm2F32(q32)
	nv32 := 1 + e.mir.maxEps // ‖row32‖ ≤ ‖row64‖ + residual
	return ((rq+g32*n32q)*nv32 + g64*(1+1e-12)) * boundSlack
}

// screenBuf recycles per-query float32 score buffers: one slot per
// concurrent query, each sized to the largest collection it has served,
// so steady-state screening allocates nothing proportional to n.
var screenBuf = sync.Pool{New: func() any { return new([]float32) }}

func getScreenBuf(n int) *[]float32 {
	p := screenBuf.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// topKScreened runs the two-stage scan for a normalized query. Callers
// guarantee screenable(k) and k ≤ live rows. Skipped rows are never
// scored: stage 1 leaves their buf entry untouched (possibly stale pool
// data), which is safe because every later read of buf is guarded by the
// same skip test.
func (e *Engine) topKScreened(qn []float64, k int, skip Skip) ([]Item, ScreenStats) {
	q32 := make([]float32, len(qn))
	dense.ConvertF32(q32, qn)
	slack := e.screenSlack(qn, q32)
	bufp := getScreenBuf(e.docs.Rows)
	buf := *bufp
	low := e.screenPass(buf, q32, slack, k, skip)
	items, cands := e.rescorePass(buf, qn, slack, k, low, skip)
	screenBuf.Put(bufp)
	scanned := e.docs.Rows - skip.CountUpTo(e.docs.Rows)
	return items, ScreenStats{Screened: true, Candidates: cands, ScannedRows: scanned}
}

// screenPass fills buf with the float32 screened score of every live row
// and returns the kth largest certified lower bound — the screening
// threshold L. The scan shards exactly like the float64 scoring scan.
func (e *Engine) screenPass(buf []float32, q32 []float32, slack float64, k int, skip Skip) float64 {
	n := e.docs.Rows
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		s := newSelector(k)
		e.screenSpan(s, buf, q32, slack, 0, n, skip)
		return s.finish()[k-1].Score
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			e.screenSpan(s, buf, q32, slack, lo, hi, skip)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	// Every live row was offered and k ≤ live (callers clamp), so the
	// merge holds at least k items.
	return mergeSelectors(sels, k)[k-1].Score
}

// screenSpan is the stage-1 kernel: float32 dot against mirror rows
// [lo, hi), recording the raw screened score and feeding the certified
// lower bound through the selector. Skipped rows are not scored and
// their buf entry is left untouched.
//
//lsilint:noalloc
func (e *Engine) screenSpan(s *selector, buf []float32, q32 []float32, slack float64, lo, hi int, skip Skip) {
	if skip == nil {
		for i := lo; i < hi; i++ {
			sc := dense.DotF32(q32, e.mir.docs.Row(i))
			buf[i] = sc
			s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		sc := dense.DotF32(q32, e.mir.docs.Row(i))
		buf[i] = sc
		s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
	}
}

// rescorePass rescans the screened scores, rescoring in float64 every
// row whose upper bound clears the threshold, and returns the exact
// top-k plus the candidate count. The rescore uses the same dense.Dot
// the exact path uses, so surviving scores are bit-identical to it.
func (e *Engine) rescorePass(buf []float32, qn []float64, slack float64, k int, low float64, skip Skip) ([]Item, int) {
	n := e.docs.Rows
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		s := newSelector(k)
		cands := e.rescoreSpan(s, buf, qn, slack, low, 0, n, skip)
		return s.finish(), cands
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	counts := make([]int, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			counts[w] = e.rescoreSpan(s, buf, qn, slack, low, lo, hi, skip)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	cands := 0
	for _, c := range counts {
		cands += c
	}
	return mergeSelectors(sels, k), cands
}

// rescoreSpan is the stage-2 kernel over rows [lo, hi): cheap float32
// upper-bound test, exact float64 rescore only for survivors. The skip
// test guards the buf read too — a skipped row's entry may be stale.
//
//lsilint:noalloc
func (e *Engine) rescoreSpan(s *selector, buf []float32, qn []float64, slack float64, low float64, lo, hi int, skip Skip) int {
	cands := 0
	if skip == nil {
		for i := lo; i < hi; i++ {
			if float64(buf[i])+e.mir.eps[i]+slack >= low {
				s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
				cands++
			}
		}
		return cands
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		if float64(buf[i])+e.mir.eps[i]+slack >= low {
			s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
			cands++
		}
	}
	return cands
}

// lbThreshold computes the screening threshold for a score row that was
// already screened by a batched gemm (stage 1 of TopKBatch): the kth
// largest certified lower bound over the live entries of buf. Callers
// clamp k ≤ live, so at least k bounds are offered.
func (e *Engine) lbThreshold(buf []float32, slack float64, k int, skip Skip) float64 {
	n := len(buf)
	nw := runtime.GOMAXPROCS(0)
	if n < selectParallelCutoff || nw < 2 {
		s := newSelector(k)
		e.lbSpan(s, buf, slack, 0, n, skip)
		return s.finish()[k-1].Score
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			e.lbSpan(s, buf, slack, lo, hi, skip)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeSelectors(sels, k)[k-1].Score
}

// lbSpan offers the certified lower bound of already-screened live rows
// [lo, hi) through the selector — a skipped row must not seed the
// threshold (its gemm score is real here, but it is not a candidate).
//
//lsilint:noalloc
func (e *Engine) lbSpan(s *selector, buf []float32, slack float64, lo, hi int, skip Skip) {
	if skip == nil {
		for i := lo; i < hi; i++ {
			s.offer(Item{Doc: i, Score: float64(buf[i]) - e.mir.eps[i] - slack})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		s.offer(Item{Doc: i, Score: float64(buf[i]) - e.mir.eps[i] - slack})
	}
}

// checkMirror panics if the mirror has drifted from the float64 cache —
// a development invariant used by tests.
func (e *Engine) checkMirror() {
	if e.mir == nil {
		return
	}
	if e.mir.docs.Rows != e.docs.Rows || e.mir.docs.Cols != e.docs.Cols {
		panic("rank: mirror shape drift")
	}
	for i := 0; i < e.docs.Rows; i++ {
		r64 := e.docs.Row(i)
		r32 := e.mir.docs.Row(i)
		for j, v := range r64 {
			if math.Float32bits(r32[j]) != math.Float32bits(float32(v)) {
				panic("rank: mirror row not bit-equal to converted float64 row")
			}
		}
	}
	if e.mir.q8 == nil {
		return
	}
	if e.mir.q8.Rows != e.docs.Rows || e.mir.q8.Cols != e.docs.Cols {
		panic("rank: int8 tier shape drift")
	}
	requant := make([]int8, e.docs.Cols)
	for i := 0; i < e.docs.Rows; i++ {
		r64 := e.docs.Row(i)
		s := dense.QuantizeI8(requant, r64)
		if math.Float64bits(s) != math.Float64bits(e.mir.scale[i]) {
			panic("rank: int8 tier scale not bit-equal to requantization")
		}
		r8 := e.mir.q8.Row(i)
		for j, q := range requant {
			if r8[j] != q {
				panic("rank: int8 tier row not bit-equal to requantization")
			}
		}
	}
}
