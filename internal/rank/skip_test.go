package rank

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dense"
)

// skipEvery builds a skip set over n rows marking every stride-th row
// (and always row 0, typically a strong match under random queries).
func skipEvery(n, stride int) Skip {
	s := NewSkip(n)
	for i := 0; i < n; i += stride {
		s.Set(i)
	}
	return s
}

// liveOf returns the complement of skip over [0, n): the original index
// of each surviving row, in order.
func liveOf(n int, skip Skip) []int {
	var live []int
	for i := 0; i < n; i++ {
		if !skip.Has(i) {
			live = append(live, i)
		}
	}
	return live
}

// compactRows gathers the live rows of docs into a fresh matrix — the
// "physically removed" reference a skip scan must be indistinguishable
// from.
func compactRows(docs *dense.Matrix, live []int) *dense.Matrix {
	out := dense.New(len(live), docs.Cols)
	for i, r := range live {
		copy(out.Row(i), docs.Row(r))
	}
	return out
}

// remapItems translates a compacted engine's doc ids back to original
// row indices so results are comparable item-for-item.
func remapItems(items []Item, live []int) []Item {
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = Item{Doc: live[it.Doc], Score: it.Score}
	}
	return out
}

func TestSkipBitset(t *testing.T) {
	var nilSkip Skip
	if nilSkip.Has(0) || nilSkip.Has(1000) {
		t.Fatal("nil skip reports set bits")
	}
	if nilSkip.CountUpTo(500) != 0 {
		t.Fatal("nil skip counts nonzero")
	}
	s := NewSkip(130) // 3 words, last partial
	for _, i := range []int{0, 63, 64, 100, 129} {
		s.Set(i)
	}
	for _, i := range []int{0, 63, 64, 100, 129} {
		if !s.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	for _, i := range []int{1, 62, 65, 128, 500} {
		if s.Has(i) {
			t.Fatalf("bit %d unexpectedly set", i)
		}
	}
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 2}, {65, 3}, {101, 4}, {129, 4}, {130, 5}, {1000, 5},
	} {
		if got := s.CountUpTo(tc.n); got != tc.want {
			t.Fatalf("CountUpTo(%d) = %d want %d", tc.n, got, tc.want)
		}
	}
}

// TestTopKSkipPackage pins the package-level selection: TopKSkip over a
// score vector equals TopK over the physically-filtered scores with ids
// mapped back, for serial and parallel sizes.
func TestTopKSkipPackage(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{40, selectParallelCutoff + 100} {
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		// Exact ties across the live/skipped boundary.
		for i := 3; i < n; i += 7 {
			scores[i] = scores[i-1]
		}
		skip := skipEvery(n, 3)
		live := liveOf(n, skip)
		filtered := make([]float64, len(live))
		ids := make([]int, len(live))
		for i, r := range live {
			filtered[i] = scores[r]
			ids[i] = r
		}
		for _, k := range []int{1, 5, len(live) - 1, len(live), n, n + 10} {
			got := TopKSkip(scores, nil, k, skip)
			want := TopK(filtered, ids, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d: TopKSkip diverges from filtered TopK\n got %v\nwant %v",
					n, k, got, want)
			}
		}
		if got := TopKSkip(scores, nil, 0, skip); len(got) != 0 {
			t.Fatal("k=0 not empty")
		}
	}
	// Skipping everything yields an empty result for any k.
	all := NewSkip(100)
	for i := 0; i < 100; i++ {
		all.Set(i)
	}
	if got := TopKSkip(make([]float64, 100), nil, 5, all); len(got) != 0 {
		t.Fatalf("all-skipped returned %v", got)
	}
}

// TestEngineSkipMatchesCompacted is the pinning test for tombstone
// serving: every engine path — exact (serial and parallel), screened,
// and cluster-pruned — queried with a skip set must return results
// byte-identical (after index mapping) to an engine built without the
// skipped rows. Skipped rows include the strongest matches, so a row
// leaking into a threshold or a selector would change the output.
func TestEngineSkipMatchesCompacted(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(73))
	cases := []struct {
		n, dim int
		ivf    bool
	}{
		{60, 8, false},    // tiny: exact fallback everywhere
		{900, 20, false},  // screened, serial
		{2600, 16, false}, // screened, parallel scan
		{2600, 16, true},  // cluster-pruned
	}
	for _, tc := range cases {
		docs := randomMatrix(rng, tc.n, tc.dim)
		for i := 4; i < tc.n; i += 9 {
			copy(docs.Row(i), docs.Row(i-1)) // ties across the skip boundary
		}
		skip := skipEvery(tc.n, 4)
		live := liveOf(tc.n, skip)
		compact := compactRows(docs, live)

		type pair struct {
			name string
			full *Engine // queried with skip
			ref  *Engine // built without the skipped rows
		}
		pairs := []pair{
			{"exact", NewEngineExact(docs), NewEngineExact(compact)},
			{"screened", NewEngine(docs), NewEngine(compact)},
		}
		if tc.ivf {
			cfg := IVFConfig{MinRows: 1}
			pairs = append(pairs, pair{"ivf", ivfEngine(docs, cfg), ivfEngine(compact, cfg)})
		}
		q := make([]float64, tc.dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		// Aim the query at a skipped row so it would dominate if leaked.
		copy(q, docs.Row(0))
		for _, p := range pairs {
			for _, k := range []int{1, 3, 10, len(live) - 1, len(live), tc.n + 5} {
				got := p.full.TopKSkip(q, k, skip)
				want := remapItems(p.ref.TopK(q, k), live)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s n=%d k=%d: skip result diverges from compacted engine\n got %v\nwant %v",
						p.name, tc.n, k, got, want)
				}
				for _, it := range got {
					if skip.Has(it.Doc) {
						t.Fatalf("%s n=%d k=%d: skipped row %d surfaced", p.name, tc.n, k, it.Doc)
					}
				}
			}
			// Probe-capped scans stay within the live set too (approximate
			// mode changes recall, never resurrects a tombstone).
			if tc.ivf {
				items, _ := p.full.TopKProbeSkip(q, 10, 2, skip)
				for _, it := range items {
					if skip.Has(it.Doc) {
						t.Fatalf("%s: skipped row %d surfaced under nprobe", p.name, it.Doc)
					}
				}
			}
		}
	}
}

// TestEngineSkipBatchMatchesCompacted pins the batch paths: the float64
// gemm fallback, the screened batch, and the cluster-pruned batch all
// honor the skip set and agree with per-query TopKSkip and with the
// compacted reference engine.
func TestEngineSkipBatchMatchesCompacted(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(79))
	for _, tc := range []struct {
		n, dim int
		ivf    bool
	}{
		{80, 6, false},    // gemm fallback (below screen cutoff)
		{2600, 16, false}, // screened batch
		{2600, 16, true},  // IVF batch
	} {
		docs := randomMatrix(rng, tc.n, tc.dim)
		skip := skipEvery(tc.n, 5)
		live := liveOf(tc.n, skip)
		compact := compactRows(docs, live)
		var full, ref *Engine
		if tc.ivf {
			cfg := IVFConfig{MinRows: 1}
			full, ref = ivfEngine(docs, cfg), ivfEngine(compact, cfg)
		} else {
			full, ref = NewEngine(docs), NewEngine(compact)
		}
		queries := randomMatrix(rng, batchBlock+5, tc.dim)
		copy(queries.Row(0), docs.Row(0)) // aimed at a skipped row
		k := 12
		got, _ := full.TopKBatchSkipWithStats(queries, k, skip)
		wantBatch, _ := ref.TopKBatchWithStats(queries, k)
		for i := range got {
			want := remapItems(wantBatch[i], live)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("n=%d ivf=%v query %d: batch skip diverges\n got %v\nwant %v",
					tc.n, tc.ivf, i, got[i], want)
			}
			single := full.TopKSkip(queries.Row(i), k, skip)
			if !reflect.DeepEqual(got[i], single) {
				t.Fatalf("n=%d ivf=%v query %d: batch vs single TopKSkip diverge", tc.n, tc.ivf, i)
			}
		}
	}
}

// TestEngineSkipNilAndEmpty: a nil skip and an all-zero skip are both
// exactly the unskipped scan.
func TestEngineSkipNilAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	docs := randomMatrix(rng, 500, 12)
	e := NewEngine(docs)
	q := make([]float64, 12)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	want := e.TopK(q, 7)
	if got := e.TopKSkip(q, 7, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("nil skip diverges from TopK")
	}
	if got := e.TopKSkip(q, 7, NewSkip(500)); !reflect.DeepEqual(got, want) {
		t.Fatal("empty skip diverges from TopK")
	}
	// Skip covering every row yields nothing.
	all := NewSkip(500)
	for i := 0; i < 500; i++ {
		all.Set(i)
	}
	if got := e.TopKSkip(q, 7, all); len(got) != 0 {
		t.Fatalf("all-skipped engine returned %v", got)
	}
}
