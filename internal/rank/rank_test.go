package rank

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dense"
)

// sortSelect is the reference implementation TopK must match exactly:
// materialize everything, full sort under the ranking order, truncate.
func sortSelect(scores []float64, ids []int, k int) []Item {
	all := make([]Item, len(scores))
	for i, s := range scores {
		doc := i
		if ids != nil {
			doc = ids[i]
		}
		all[i] = Item{Doc: doc, Score: s}
	}
	Sort(all)
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k]
}

// TestTopKMatchesSortProperty is the parity property test: across random
// score vectors — with heavy deliberate ties from quantization — heap
// selection must be byte-identical to the sort-based ranking, for every
// k, with and without an id mapping, serial and parallel.
func TestTopKMatchesSortProperty(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // exercise the sharded path even on 1 CPU
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(400)
		if trial%7 == 0 {
			n = selectParallelCutoff + rng.Intn(5000) // force the parallel shards
		}
		scores := make([]float64, n)
		levels := 1 + rng.Intn(8) // few distinct values → many exact ties
		for i := range scores {
			scores[i] = float64(rng.Intn(levels)) / float64(levels)
		}
		var ids []int
		if trial%2 == 1 {
			ids = rng.Perm(n * 2)[:n] // non-identity, non-monotone doc ids
		}
		for _, k := range []int{0, 1, 2, 3, n / 2, n - 1, n, n + 10} {
			got := TopK(scores, ids, k)
			want := sortSelect(scores, ids, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d k=%d: heap top-k diverges from sort\n got %v\nwant %v",
					trial, n, k, got, want)
			}
		}
	}
}

func TestTopKAllTied(t *testing.T) {
	scores := make([]float64, 100)
	got := TopK(scores, nil, 7)
	for i, it := range got {
		if it.Doc != i || it.Score != 0 {
			t.Fatalf("tied scores must select lowest doc ids in order: %v", got)
		}
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *dense.Matrix {
	m := dense.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestEngineScoresMatchCosine pins the cached-norm scan to the textbook
// cosine within floating-point slack.
func TestEngineScoresMatchCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := randomMatrix(rng, 300, 12)
	// A zero document row must score 0, matching the cosine convention.
	for j := 0; j < 12; j++ {
		docs.Set(17, j, 0)
	}
	e := NewEngine(docs)
	q := make([]float64, 12)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	scores := e.Scores(q)
	for i := 0; i < docs.Rows; i++ {
		want := dense.Cosine(q, docs.Row(i))
		if d := scores[i] - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("doc %d: engine %v cosine %v", i, scores[i], want)
		}
	}
	if scores[17] != 0 {
		t.Fatalf("zero document scored %v", scores[17])
	}
	zq := make([]float64, 12)
	for _, s := range e.Scores(zq) {
		if s != 0 {
			t.Fatal("zero query must score 0 everywhere")
		}
	}
}

// TestEngineTopKMatchesScores: the fused score+select path must equal
// selecting over the materialized score vector byte-for-byte.
func TestEngineTopKMatchesScores(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 50, 3000} {
		docs := randomMatrix(rng, n, 16)
		// Duplicate some rows to manufacture exact score ties.
		for i := 2; i < n; i += 5 {
			copy(docs.Row(i), docs.Row(i-1))
		}
		e := NewEngine(docs)
		q := make([]float64, 16)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for _, k := range []int{1, 5, n} {
			got := e.TopK(q, k)
			want := TopK(e.Scores(q), nil, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d: fused top-k diverges\n got %v\nwant %v", n, k, got, want)
			}
		}
	}
}

// TestEngineBatchMatchesSingle: the gemm-scored batch path must be
// byte-identical to per-query TopK (same normalization, same dot order,
// same selection).
func TestEngineBatchMatchesSingle(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(3))
	docs := randomMatrix(rng, 2500, 20)
	e := NewEngine(docs)
	queries := randomMatrix(rng, batchBlock+11, 20) // spans two gemm blocks
	batch := e.TopKBatch(queries, 8)
	if len(batch) != queries.Rows {
		t.Fatalf("batch returned %d results for %d queries", len(batch), queries.Rows)
	}
	for r := 0; r < queries.Rows; r++ {
		single := e.TopK(queries.Row(r), 8)
		if !reflect.DeepEqual(batch[r], single) {
			t.Fatalf("query %d: batch diverges from single\n got %v\nwant %v", r, batch[r], single)
		}
	}
}

func TestEngineExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := randomMatrix(rng, 120, 10)
	base := NewEngine(all.Slice(0, 80, 0, 10))
	ext := base.Extend(all.Slice(80, 120, 0, 10))
	full := NewEngine(all)
	if ext.NumDocs() != 120 {
		t.Fatalf("extended engine covers %d docs", ext.NumDocs())
	}
	if base.NumDocs() != 80 {
		t.Fatal("Extend mutated the base engine")
	}
	q := make([]float64, 10)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	if !reflect.DeepEqual(ext.Scores(q), full.Scores(q)) {
		t.Fatal("extended engine scores differ from a fresh build")
	}
}

// TestEngineExtendChainShares pins the cheap-append contract: the first
// Extend of a fresh engine copies (a Clone has no spare capacity), but
// once the chain owns an allocation with headroom, the next Extend claims
// the tail and shares prefix storage with its parent instead of copying.
func TestEngineExtendChainShares(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	all := randomMatrix(rng, 60, 8)
	e0 := NewEngine(all.Slice(0, 40, 0, 8))
	e1 := e0.Extend(all.Slice(40, 50, 0, 8)) // copy path, allocates headroom
	e2 := e1.Extend(all.Slice(50, 60, 0, 8)) // must reuse e1's tail
	if &e2.docs.Data[0] != &e1.docs.Data[0] {
		t.Fatal("second extend did not share the chain's backing allocation")
	}
	if e2.claimed != e1.claimed {
		t.Fatal("second extend did not stay on the chain's claim token")
	}
	full := NewEngine(all)
	q := make([]float64, 8)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	if !reflect.DeepEqual(e2.Scores(q), full.Scores(q)) {
		t.Fatal("chained engine scores differ from a fresh build")
	}
	// Parents still serve their own prefixes untouched.
	if !reflect.DeepEqual(e1.Scores(q), NewEngine(all.Slice(0, 50, 0, 8)).Scores(q)) {
		t.Fatal("extending mutated the parent engine's rows")
	}
	if e0.NumDocs() != 40 || e1.NumDocs() != 50 || e2.NumDocs() != 60 {
		t.Fatalf("chain lengths %d/%d/%d", e0.NumDocs(), e1.NumDocs(), e2.NumDocs())
	}
}

// TestEngineExtendSiblingsDoNotAlias extends the same parent twice: only
// one sibling may win the spare capacity, and the loser must fall back to
// a private copy rather than clobbering the winner's rows.
func TestEngineExtendSiblingsDoNotAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomMatrix(rng, 50, 8)
	rowsA := randomMatrix(rng, 10, 8)
	rowsB := randomMatrix(rng, 10, 8)
	parent := NewEngine(base.Slice(0, 40, 0, 8)).Extend(base.Slice(40, 50, 0, 8))
	a := parent.Extend(rowsA) // claims the tail
	b := parent.Extend(rowsB) // claim CAS must fail → copy
	if &a.docs.Data[0] != &parent.docs.Data[0] {
		t.Fatal("first sibling should have claimed the parent's spare capacity")
	}
	if &b.docs.Data[0] == &parent.docs.Data[0] {
		t.Fatal("second sibling reused claimed capacity")
	}
	q := make([]float64, 8)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	wantA := NewEngine(base.AugmentRows(rowsA)).Scores(q)
	wantB := NewEngine(base.AugmentRows(rowsB)).Scores(q)
	gotA := a.Scores(q)
	gotB := b.Scores(q)
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatal("first sibling corrupted")
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("second sibling corrupted")
	}
	// Extending b (which owns a fresh allocation with headroom) must not
	// disturb a either.
	c := b.Extend(rowsA)
	if !reflect.DeepEqual(a.Scores(q), wantA) || c.NumDocs() != 70 {
		t.Fatal("extending the copied sibling disturbed the winner")
	}
}

// TestEngineConcurrentReaders hammers one engine from many goroutines —
// engines are immutable, so -race must stay quiet.
func TestEngineConcurrentReaders(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(5))
	e := NewEngine(randomMatrix(rng, 4000, 10))
	q := make([]float64, 10)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	want := e.TopK(q, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := e.TopK(q, 5); !reflect.DeepEqual(got, want) {
					panic("nondeterministic top-k")
				}
			}
		}()
	}
	wg.Wait()
}
