package rank

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dense"
)

// TestInt8TierByteIdentical pins the three-tier tentpole: across
// randomized engines — with heavy exact ties, zero rows, zero queries,
// serial and parallel scans — the int8-screened TopK/TopKBatch must be
// byte-identical to both the exact engine and the two-tier (float32)
// engine over the same vectors, for every k.
func TestInt8TierByteIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ n, dim int }{
		{50, 8},    // below screenCutoff: exact fallback, still identical
		{700, 24},  // screened, serial scan
		{2200, 16}, // screened, above scoreParallelCutoff
		{5000, 40}, // screened, parallel, more ties
	}
	for _, tc := range cases {
		docs := randomMatrix(rng, tc.n, tc.dim)
		for i := 2; i < tc.n; i += 5 {
			copy(docs.Row(i), docs.Row(i-1)) // manufacture exact score ties
		}
		for j := 0; j < tc.dim && tc.n > 9; j++ {
			docs.Set(9, j, 0) // a zero row must survive the coarse tier too
		}
		int8e := NewEngine(docs)
		f32e := NewEngineF32(docs)
		exact := NewEngineExact(docs)
		if !int8e.Int8Screening() || f32e.Int8Screening() || exact.Int8Screening() {
			t.Fatal("Int8Screening() flags wrong")
		}
		q := make([]float64, tc.dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		zq := make([]float64, tc.dim)
		for _, k := range []int{1, 2, 10, 100, tc.n / 2, tc.n - 1, tc.n, tc.n + 5} {
			want := exact.TopK(q, k)
			if got := int8e.TopK(q, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: int8 TopK diverges\n got %v\nwant %v",
					tc.n, tc.dim, k, got, want)
			}
			if got := f32e.TopK(q, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: f32-only TopK diverges", tc.n, tc.dim, k)
			}
			if gz, wz := int8e.TopK(zq, k), exact.TopK(zq, k); !reflect.DeepEqual(gz, wz) {
				t.Fatalf("n=%d k=%d: zero-query divergence", tc.n, k)
			}
		}
		queries := randomMatrix(rng, batchBlock+7, tc.dim) // spans a ragged block
		for _, k := range []int{1, 9, tc.n} {
			want := exact.TopKBatch(queries, k)
			if got := int8e.TopKBatch(queries, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: int8 TopKBatch diverges", tc.n, tc.dim, k)
			}
		}
	}
}

// TestInt8BracketDominates is the satellite property test: for every
// live row, the certified coarse bracket must contain the exact float64
// score — lb8 ≤ s64 ≤ ub8 — so no true candidate can ever be pruned by
// the coarse pass.
func TestInt8BracketDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 4; trial++ {
		n, dim := 300+rng.Intn(1500), 4+rng.Intn(48)
		e := NewEngine(randomMatrix(rng, n, dim))
		for qi := 0; qi < 8; qi++ {
			q := make([]float64, dim)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			qn := normalizeCopy(q)
			q8 := e.quantizeQuery(qn)
			for i := 0; i < e.docs.Rows; i++ {
				d := dense.DotI8(q8.qq8, e.mir.q8.Row(i))
				c := e.mir.scale[i] * q8.sq * float64(d)
				eps := e.mir.eps8[i]*q8.epsMul + q8.slack8
				s64 := dense.Dot(qn, e.docs.Row(i))
				if lb := c - eps; lb > s64 {
					t.Fatalf("trial %d row %d: coarse lower bound %v above exact %v", trial, i, lb, s64)
				}
				if ub := c + eps; ub < s64 {
					t.Fatalf("trial %d row %d: coarse upper bound %v below exact %v", trial, i, ub, s64)
				}
			}
		}
	}
}

// TestInt8SkipParity pins tombstone behavior on the three-tier path:
// results with rows skipped must be byte-identical to the exact engine
// with the same skip set, across single and batch entry points.
func TestInt8SkipParity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(33))
	n, dim := 2600, 20
	docs := randomMatrix(rng, n, dim)
	for i := 3; i < n; i += 7 {
		copy(docs.Row(i), docs.Row(i-1))
	}
	int8e := NewEngine(docs)
	exact := NewEngineExact(docs)
	skip := NewSkip(n)
	for i := 0; i < n; i += 3 {
		skip.Set(i) // a third of the rows tombstoned, including ties
	}
	q := make([]float64, dim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for _, k := range []int{1, 5, 64, n} {
		want := exact.TopKSkip(q, k, skip)
		if got := int8e.TopKSkip(q, k, skip); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: int8 TopKSkip diverges from exact", k)
		}
		for _, it := range want {
			if skip.Has(it.Doc) {
				t.Fatalf("k=%d: tombstoned row %d surfaced", k, it.Doc)
			}
		}
	}
	queries := randomMatrix(rng, 11, dim)
	gotB, _ := int8e.TopKBatchSkipWithStats(queries, 7, skip)
	wantB, _ := exact.TopKBatchSkipWithStats(queries, 7, skip)
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatal("int8 batch skip diverges from exact")
	}
}

// TestInt8ExtendParity pins that both Extend paths — the shared-tail
// claim and the losing-sibling copy — preserve the int8 tier and keep
// results byte-identical to an exact engine over the same rows, with
// the tier's stored rows still bit-equal to requantization.
func TestInt8ExtendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const dim = 16
	raw := randomMatrix(rng, 900, dim)
	root := NewEngine(raw)
	more1 := randomMatrix(rng, 300, dim)
	more2 := randomMatrix(rng, 250, dim)
	shared := root.Extend(more1) // wins the tail claim
	sibling := root.Extend(more2) // loses the CAS, copies
	for _, tc := range []struct {
		e    *Engine
		more *dense.Matrix
	}{{shared, more1}, {sibling, more2}} {
		if !tc.e.Int8Screening() {
			t.Fatal("Extend dropped the int8 tier")
		}
		tc.e.checkMirror() // bit-exact requantization of every row
		q := make([]float64, dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		want := NewEngineExact(raw.AugmentRows(tc.more)).TopK(q, 17)
		if got := tc.e.TopK(q, 17); !reflect.DeepEqual(got, want) {
			t.Fatal("extended int8 engine diverges from exact")
		}
	}
}

// TestInt8Stats checks the ScreenStats contract of the three-tier path:
// k ≤ Candidates ≤ Promoted ≤ n, and the items match plain TopK.
func TestInt8Stats(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	e := NewEngine(randomMatrix(rng, 3000, 24))
	q := make([]float64, 24)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	items, st := e.TopKWithStats(q, 10)
	if !st.Screened {
		t.Fatal("large int8 engine did not screen")
	}
	if st.Candidates < 10 || st.Candidates > st.Promoted || st.Promoted > e.NumDocs() {
		t.Fatalf("stats out of order: k=10 cands=%d promoted=%d n=%d",
			st.Candidates, st.Promoted, e.NumDocs())
	}
	if !reflect.DeepEqual(items, e.TopK(q, 10)) {
		t.Fatal("TopKWithStats items differ from TopK")
	}
}

// TestInt8WideRowsFallBack pins the overflow guard: rows wider than
// MaxI8Dim cannot carry an int8 tier (the integer dot could exceed
// int32), so NewEngine silently keeps the two-tier path — and still
// matches exact results.
func TestInt8WideRowsFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	docs := randomMatrix(rng, 3, dense.MaxI8Dim+1)
	e := NewEngine(docs)
	if !e.Screening() || e.Int8Screening() {
		t.Fatal("wide-row engine should screen without an int8 tier")
	}
	q := make([]float64, docs.Cols)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	want := NewEngineExact(docs).TopK(q, 2)
	if got := e.TopK(q, 2); !reflect.DeepEqual(got, want) {
		t.Fatal("wide-row fallback diverges from exact")
	}
}
