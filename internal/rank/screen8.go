package rank

import (
	"runtime"
	"sync"

	"repro/internal/dense"
)

// Three-tier exact top-k: before the float32 screening bracket of
// screen.go runs, an int8 scalar-quantized tier is scanned at one byte
// per coordinate. Each document row v (float64, unit-normalized) stores
// a quantized copy q8 with scale s (v ≈ s·q8) and a certified residual
// ε8 = ‖v − s·q8‖₂; the query qn quantizes the same way to (qq8, sq)
// with residual rq8 = ‖qn − sq·qq8‖₂. The integer dot d = q8·qq8 is
// EXACT (int32 accumulation never rounds), so the coarse score
//
//	c = fl(fl(s·sq)·float64(d)) ≈ (s·q8)·(sq·qq8)
//
// differs from the exact float64 score fl64(qn·v) by at most
//
//	|fl64(qn·v) − c|
//	  ≤ γ64·‖qn‖·‖v‖                  (float64 summation rounding)
//	  + ‖qn − sq·qq8‖·‖v‖             (query quantization, Cauchy–Schwarz)
//	  + ‖sq·qq8‖·‖v − s·q8‖           (row quantization, Cauchy–Schwarz)
//	  + ~3u64·‖s·q8‖·‖sq·qq8‖         (rounding of c's two multiplies)
//
// using ‖v‖ ≤ 1, ‖sq·qq8‖ ≤ 1 + rq8 and ‖s·q8‖ ≤ 1 + maxEps8. The
// per-row part collapses to ε8·epsMul with epsMul = (1 + rq8)·slop and
// everything else to one query-time scalar slack8, giving certified
// brackets lb8 = c − ε8·epsMul − slack8 ≤ fl64(qn·v) ≤ ub8 = c +
// ε8·epsMul + slack8 (every piece boundSlack-inflated so the float64
// rounding of evaluating the bound itself can never shave a candidate).
//
// The promotion argument stacks thresholds. Let L8 be the kth largest
// lb8 over the live rows. Every true top-k row j has ub8_j ≥ s64_j ≥
// (kth best exact) ≥ L8 — the same order-statistic step as screen.go —
// so the promoted set {ub8 ≥ L8} contains the true top-k, and it holds
// at least k rows (the k rows seeding L8 promote themselves: ub8 ≥
// lb8 ≥ L8). Promoted rows get the float32 screened score and its
// bracket; L32, the kth largest float32 lower bound OVER THE PROMOTED
// SET, satisfies L32 ≤ kth largest exact score of the promoted set ≤
// kth best exact score overall (lower bounds are pointwise dominated,
// and a subset's kth largest never exceeds the superset's). Rescoring
// exactly the promoted rows with ub32 ≥ L32 under the usual total order
// therefore reproduces the full float64 selection bit for bit — pinned
// against NewEngineExact by the parity suites. See docs/ALGORITHMS.md.

// q8query is the quantized query state one three-tier scan works from.
type q8query struct {
	qq8 []int8
	q32 []float32
	// sq is the query's quantization scale; a row's coarse score is
	// scale[i]·sq·float64(dot8).
	sq float64
	// epsMul scales every stored per-row residual ε8 at query time:
	// (1 + rq8)·boundSlack, the ‖sq·qq8‖ factor of the Cauchy–Schwarz
	// term.
	epsMul float64
	// slack8 is the query-level remainder of the coarse bound: query
	// residual, float64 summation rounding, and the rounding of the
	// coarse score's own arithmetic.
	slack8 float64
	// slack32 is the float32 bracket's query-level slack (screenSlack) —
	// carried here so the promotion pass needs no recomputation.
	slack32 float64
}

// quantizeQuery builds the three-tier query state: int8 quantization
// plus the float32 mirror conversion the promotion bracket needs.
func (e *Engine) quantizeQuery(qn []float64) *q8query {
	q := &q8query{
		qq8: make([]int8, len(qn)),
		q32: make([]float32, len(qn)),
	}
	dense.ConvertF32(q.q32, qn)
	q.sq = dense.QuantizeI8(q.qq8, qn)
	rq8 := dense.ResidualI8(qn, q.qq8, q.sq) * boundSlack
	n1 := float64(len(qn) + 1)
	const u64 = 0x1p-53
	g64 := n1 * u64 / (1 - n1*u64)
	q.epsMul = (1 + rq8) * boundSlack
	q.slack8 = (rq8 + g64*(1+1e-12) + 4*u64*(1+e.mir.maxEps8)*(1+rq8)) * boundSlack
	q.slack32 = e.screenSlack(qn, q.q32)
	return q
}

// screen8Buf recycles the per-query three-tier buffers: the raw integer
// dot of every row (stage 1) and the float32 screened score of every
// promoted row (stage 2), sized to the largest collection served.
type screen8Buf struct {
	d8  []int32
	s32 []float32
}

var screen8Pool = sync.Pool{New: func() any { return new(screen8Buf) }}

func getScreen8Buf(n int) *screen8Buf {
	b := screen8Pool.Get().(*screen8Buf)
	if cap(b.d8) < n {
		b.d8 = make([]int32, n)
		b.s32 = make([]float32, n)
	}
	b.d8 = b.d8[:n]
	b.s32 = b.s32[:n]
	return b
}

// runSpans shards rows [0, n) across workers — one bounded selector
// each, merged under the usual total order, exactly the sharding every
// screening pass uses — and returns the merged top-k plus the summed
// kernel counts. The kernel must be deterministic per row; the merge
// then makes the result independent of the worker count.
func runSpans(n, k int, parallel bool, kernel func(s *selector, lo, hi int) int) ([]Item, int) {
	nw := runtime.GOMAXPROCS(0)
	if !parallel || nw < 2 || n < 2 {
		s := newSelector(k)
		c := kernel(s, 0, n)
		return s.finish(), c
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	counts := make([]int, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			counts[w] = kernel(s, lo, hi)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return mergeSelectors(sels, k), total
}

// topKScreened8 runs the three-tier scan for a normalized query.
// Callers guarantee screenable(k), mir.q8 != nil, and k ≤ live rows.
// Skipped rows are never scored on any tier: their buffer entries stay
// stale, which is safe because every later read is guarded by the same
// skip test.
func (e *Engine) topKScreened8(qn []float64, k int, skip Skip) ([]Item, ScreenStats) {
	q := e.quantizeQuery(qn)
	n := e.docs.Rows
	buf := getScreen8Buf(n)
	lb8, _ := runSpans(n, k, n*e.docs.Cols >= scoreParallelCutoff, func(s *selector, lo, hi int) int {
		e.screen8Span(s, buf.d8, q, lo, hi, skip)
		return 0
	})
	items, st := e.promoteRescore8(buf.d8, buf.s32, qn, q, k, lb8[k-1].Score, skip)
	screen8Pool.Put(buf)
	return items, st
}

// promoteRescore8 runs stages 2 and 3 over raw integer dots d8 (every
// live row scored; stale entries only where skip guards them): promote
// rows whose coarse upper bound clears low8 to the float32 bracket,
// derive the float32 threshold from the promoted set, and rescore its
// survivors in float64 — the same dense.Dot the exact path uses.
func (e *Engine) promoteRescore8(d8 []int32, s32 []float32, qn []float64, q *q8query, k int, low8 float64, skip Skip) ([]Item, ScreenStats) {
	n := e.docs.Rows
	work := n*e.docs.Cols >= scoreParallelCutoff
	lb32, promoted := runSpans(n, k, work, func(s *selector, lo, hi int) int {
		return e.promote8Span(s, d8, s32, q, low8, lo, hi, skip)
	})
	low32 := lb32[k-1].Score
	items, cands := runSpans(n, k, work, func(s *selector, lo, hi int) int {
		return e.rescore8Span(s, d8, s32, qn, q, low8, low32, lo, hi, skip)
	})
	scanned := n - skip.CountUpTo(n)
	return items, ScreenStats{Screened: true, Candidates: cands, Promoted: promoted, ScannedRows: scanned}
}

// screen8Span is the stage-1 kernel: exact integer dot against int8
// rows [lo, hi), recording the raw dot and feeding the certified coarse
// lower bound through the selector.
//
//lsilint:noalloc
func (e *Engine) screen8Span(s *selector, d8 []int32, q *q8query, lo, hi int, skip Skip) {
	mir := e.mir
	if skip == nil {
		for i := lo; i < hi; i++ {
			d := dense.DotI8(q.qq8, mir.q8.Row(i))
			d8[i] = d
			c := mir.scale[i] * q.sq * float64(d)
			s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		d := dense.DotI8(q.qq8, mir.q8.Row(i))
		d8[i] = d
		c := mir.scale[i] * q.sq * float64(d)
		s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
	}
}

// promote8Span is the stage-2 kernel: rows whose coarse upper bound
// clears low8 get the float32 screened score, recorded for stage 3, and
// their certified float32 lower bound offered through the selector.
// Returns how many rows promoted. (Skip.Has is nil-safe, and the coarse
// test already rejects almost every row, so the skip branch stays
// unhoisted here.)
//
//lsilint:noalloc
func (e *Engine) promote8Span(s *selector, d8 []int32, s32 []float32, q *q8query, low8 float64, lo, hi int, skip Skip) int {
	mir := e.mir
	promoted := 0
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		c := mir.scale[i] * q.sq * float64(d8[i])
		if c+mir.eps8[i]*q.epsMul+q.slack8 < low8 {
			continue
		}
		sc := dense.DotF32(q.q32, mir.docs.Row(i))
		s32[i] = sc
		promoted++
		s.offer(Item{Doc: i, Score: float64(sc) - mir.eps[i] - q.slack32})
	}
	return promoted
}

// rescore8Span is the stage-3 kernel: the coarse test gates which
// float32 entries are real, the float32 test gates the exact float64
// rescore. Returns how many rows were rescored.
//
//lsilint:noalloc
func (e *Engine) rescore8Span(s *selector, d8 []int32, s32 []float32, qn []float64, q *q8query, low8, low32 float64, lo, hi int, skip Skip) int {
	mir := e.mir
	cands := 0
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		c := mir.scale[i] * q.sq * float64(d8[i])
		if c+mir.eps8[i]*q.epsMul+q.slack8 < low8 {
			continue
		}
		if float64(s32[i])+mir.eps[i]+q.slack32 < low32 {
			continue
		}
		s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
		cands++
	}
	return cands
}

// lbThreshold8 computes the coarse threshold for a row of raw integer
// dots already produced by the batched int8 gemm: the kth largest
// certified coarse lower bound over the live entries. Callers clamp
// k ≤ live, so at least k bounds are offered.
func (e *Engine) lbThreshold8(d8 []int32, q *q8query, k int, skip Skip) float64 {
	n := len(d8)
	items, _ := runSpans(n, k, n >= selectParallelCutoff, func(s *selector, lo, hi int) int {
		e.lb8Span(s, d8, q, lo, hi, skip)
		return 0
	})
	return items[k-1].Score
}

// lb8Span offers the certified coarse lower bound of already-scored
// live rows [lo, hi) through the selector — a skipped row must not seed
// the threshold.
//
//lsilint:noalloc
func (e *Engine) lb8Span(s *selector, d8 []int32, q *q8query, lo, hi int, skip Skip) {
	mir := e.mir
	if skip == nil {
		for i := lo; i < hi; i++ {
			c := mir.scale[i] * q.sq * float64(d8[i])
			s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		c := mir.scale[i] * q.sq * float64(d8[i])
		s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
	}
}

// topKBatchScreened8 fills out with the three-tier batch path: one
// integer gemm per query block against the int8 tier, then the per-row
// promote-and-rescore. The gemm covers every row (skipped rows are
// pruned at selection, not scoring — a gemm gather would cost more than
// it saves); every later stage honors the skip set. Callers guarantee
// screenable(k), mir.q8 != nil, and 0 < k ≤ live rows.
func (e *Engine) topKBatchScreened8(out [][]Item, stats []ScreenStats, queries *dense.Matrix, k int, skip Skip) {
	blockRows := minInt(batchBlock, queries.Rows)
	scores := dense.NewI32(blockRows, e.docs.Rows)
	qq8s := dense.NewI8(blockRows, queries.Cols)
	for b0 := 0; b0 < queries.Rows; b0 += batchBlock {
		b1 := b0 + batchBlock
		if b1 > queries.Rows {
			b1 = queries.Rows
		}
		qn := queries.Slice(b0, b1, 0, queries.Cols)
		block, qq8blk := scores, qq8s
		if qn.Rows != scores.Rows {
			// Final ragged block: row-prefix views of the existing buffers.
			block = &dense.MatrixI32{Rows: qn.Rows, Cols: scores.Cols, Data: scores.Data[:qn.Rows*scores.Cols]}
			qq8blk = &dense.MatrixI8{Rows: qn.Rows, Cols: qq8s.Cols, Data: qq8s.Data[:qn.Rows*qq8s.Cols]}
		}
		qs := make([]*q8query, qn.Rows)
		for r := 0; r < qn.Rows; r++ {
			dense.Normalize(qn.Row(r))
			qs[r] = e.quantizeQuery(qn.Row(r))
			copy(qq8blk.Row(r), qs[r].qq8)
		}
		dense.MulBTI8Into(block, qq8blk, e.mir.q8)
		for r := 0; r < qn.Rows; r++ {
			q := qs[r]
			low8 := e.lbThreshold8(block.Row(r), q, k, skip)
			s32p := getScreenBuf(e.docs.Rows)
			out[b0+r], stats[b0+r] = e.promoteRescore8(block.Row(r), *s32p, qn.Row(r), q, k, low8, skip)
			screenBuf.Put(s32p)
		}
	}
}
