package rank

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeTopKProperty is the scatter–gather identity: partition a
// random corpus across N "shards" arbitrarily, take each shard's exact
// local top-k, and MergeTopK of those lists must equal the global sort
// of all items truncated to k — tie order included. Scores are drawn
// from a small discrete set so ties are common and the (score desc, doc
// asc) tie-break is actually exercised.
func TestMergeTopKProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(20)
		shards := 1 + rng.Intn(6)
		items := make([]Item, n)
		for i := range items {
			// Discrete scores force ties; a few NaN-free extremes too.
			items[i] = Item{Doc: i, Score: float64(rng.Intn(7)) / 3}
		}
		// Arbitrary (random) placement, not round-robin: the merge must
		// not care how docs were distributed.
		lists := make([][]Item, shards)
		for _, it := range items {
			s := rng.Intn(shards)
			lists[s] = append(lists[s], it)
		}
		perShard := make([][]Item, shards)
		for s, l := range lists {
			scores := make([]float64, len(l))
			ids := make([]int, len(l))
			for i, it := range l {
				scores[i], ids[i] = it.Score, it.Doc
			}
			perShard[s] = TopK(scores, ids, k)
		}
		got := MergeTopK(k, perShard...)

		want := append([]Item(nil), items...)
		Sort(want)
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc != want[i].Doc ||
				math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("trial %d: item %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeTopKEdges pins the degenerate shapes: no lists, empty lists,
// k larger than the union, k ≤ 0.
func TestMergeTopKEdges(t *testing.T) {
	if got := MergeTopK(5); len(got) != 0 {
		t.Fatalf("merge of nothing = %v", got)
	}
	if got := MergeTopK(0, []Item{{Doc: 1, Score: 2}}); len(got) != 0 {
		t.Fatalf("k=0 merge = %v", got)
	}
	a := []Item{{Doc: 0, Score: 1}}
	b := []Item{{Doc: 3, Score: 1}, {Doc: 9, Score: 0.5}}
	got := MergeTopK(10, a, nil, b)
	want := []Item{{Doc: 0, Score: 1}, {Doc: 3, Score: 1}, {Doc: 9, Score: 0.5}}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	if a[0].Doc != 0 || b[0].Doc != 3 {
		t.Fatal("MergeTopK mutated its inputs")
	}
}
