package rank

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dense"
)

// TestTwoStageByteIdentical is the pinning test for the tentpole: across
// randomized engines — small and large, serial and parallel, heavy exact
// ties from duplicated rows, zero rows, zero queries — the screened
// TopK/TopKBatch must return results byte-identical to an exact-only
// engine over the same vectors, for every k.
func TestTwoStageByteIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(21))
	cases := []struct{ n, dim int }{
		{50, 8},      // below screenCutoff: exact fallback, still identical
		{700, 24},    // screened, serial scan
		{2200, 16},   // screened, above scoreParallelCutoff
		{5000, 40},   // screened, parallel, more ties
		{screenCutoff/4 + 3, 4}, // exactly around the cutoff boundary
	}
	for _, tc := range cases {
		docs := randomMatrix(rng, tc.n, tc.dim)
		for i := 2; i < tc.n; i += 5 {
			copy(docs.Row(i), docs.Row(i-1)) // manufacture exact score ties
		}
		for j := 0; j < tc.dim && tc.n > 9; j++ {
			docs.Set(9, j, 0) // a zero row must survive screening too
		}
		screened := NewEngine(docs)
		exact := NewEngineExact(docs)
		if !screened.Screening() || exact.Screening() {
			t.Fatal("Screening() flags wrong")
		}
		q := make([]float64, tc.dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		zq := make([]float64, tc.dim)
		for _, k := range []int{1, 2, 10, 100, tc.n / 2, tc.n - 1, tc.n, tc.n + 5} {
			got := screened.TopK(q, k)
			want := exact.TopK(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: screened TopK diverges\n got %v\nwant %v",
					tc.n, tc.dim, k, got, want)
			}
			if gz, wz := screened.TopK(zq, k), exact.TopK(zq, k); !reflect.DeepEqual(gz, wz) {
				t.Fatalf("n=%d k=%d: zero-query divergence", tc.n, k)
			}
		}
		queries := randomMatrix(rng, batchBlock+7, tc.dim) // spans a ragged block
		for _, k := range []int{1, 9, tc.n} {
			got := screened.TopKBatch(queries, k)
			want := exact.TopKBatch(queries, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: screened TopKBatch diverges", tc.n, tc.dim, k)
			}
		}
	}
}

// TestTwoStageStats checks the ScreenStats contract: a large engine
// reports Screened with a candidate count in [k, n], a small one reports
// the exact path, and the items match TopK either way.
func TestTwoStageStats(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	big := NewEngine(randomMatrix(rng, 3000, 24))
	q := make([]float64, 24)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	items, st := big.TopKWithStats(q, 10)
	if !st.Screened {
		t.Fatal("large engine did not screen")
	}
	if st.Candidates < 10 || st.Candidates > big.NumDocs() {
		t.Fatalf("candidate count %d outside [10, %d]", st.Candidates, big.NumDocs())
	}
	if !reflect.DeepEqual(items, big.TopK(q, 10)) {
		t.Fatal("TopKWithStats items differ from TopK")
	}
	small := NewEngine(randomMatrix(rng, 20, 4))
	if _, st := small.TopKWithStats(q[:4], 3); st.Screened {
		t.Fatal("small engine screened below the cutoff")
	}
	exact := NewEngineExact(randomMatrix(rng, 3000, 24))
	if _, st := exact.TopKWithStats(q, 10); st.Screened {
		t.Fatal("exact engine reported screening")
	}
}

// checkMirrorBitEqual asserts every mirror row is exactly the float32
// conversion of its float64 row, bit for bit, and that the stored
// per-row bound dominates a freshly computed residual.
func checkMirrorBitEqual(t *testing.T, e *Engine) {
	t.Helper()
	if e.mir == nil {
		t.Fatal("engine lost its mirror")
	}
	e.checkMirror() // the engine's own invariant must agree

	if e.mir.docs.Rows != e.docs.Rows || e.mir.docs.Cols != e.docs.Cols || len(e.mir.eps) != e.docs.Rows {
		t.Fatalf("mirror shape %dx%d eps=%d vs docs %dx%d",
			e.mir.docs.Rows, e.mir.docs.Cols, len(e.mir.eps), e.docs.Rows, e.docs.Cols)
	}
	for i := 0; i < e.docs.Rows; i++ {
		r64, r32 := e.docs.Row(i), e.mir.docs.Row(i)
		for j, v := range r64 {
			if math.Float32bits(r32[j]) != math.Float32bits(float32(v)) {
				t.Fatalf("row %d col %d: mirror %x != converted %x",
					i, j, math.Float32bits(r32[j]), math.Float32bits(float32(v)))
			}
		}
		if resid := dense.ResidualF32(r64, r32); e.mir.eps[i] < resid {
			t.Fatalf("row %d: stored bound %v below residual %v", i, e.mir.eps[i], resid)
		}
		if e.mir.eps[i] > e.mir.maxEps {
			t.Fatalf("row %d: eps %v above maxEps %v", i, e.mir.eps[i], e.mir.maxEps)
		}
	}
}

// TestMirrorExtendProperty is the satellite property test: any
// interleaving of Extend calls — shared-tail claims and losing-sibling
// copies, racing from multiple goroutines — must leave every produced
// engine's mirror rows bit-equal to the float32 conversion of its
// float64 rows, and its screened results byte-identical to exact
// scoring. Run under -race by `make check`/`make stress`-adjacent CI.
func TestMirrorExtendProperty(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(23))
	const dim = 12
	for trial := 0; trial < 8; trial++ {
		rootRaw := randomMatrix(rng, 30+rng.Intn(100), dim)
		root := NewEngine(rootRaw)
		// Each worker grows its own chain from a shared ancestor: the first
		// Extend of a node wins the tail claim, every racing sibling loses
		// the CAS and copies — both paths exercised concurrently.
		const workers = 4
		batches := make([][]*dense.Matrix, workers)
		for w := 0; w < workers; w++ {
			n := 3 + rng.Intn(4)
			for b := 0; b < n; b++ {
				batches[w] = append(batches[w], randomMatrix(rng, 1+rng.Intn(30), dim))
			}
		}
		chains := make([][]*Engine, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cur := root
				for _, more := range batches[w] {
					cur = cur.Extend(more)
					chains[w] = append(chains[w], cur)
				}
			}(w)
		}
		wg.Wait()
		q := make([]float64, dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		checkMirrorBitEqual(t, root)
		for w := 0; w < workers; w++ {
			raw := rootRaw
			for bi, e := range chains[w] {
				raw = raw.AugmentRows(batches[w][bi])
				checkMirrorBitEqual(t, e)
				k := 1 + rng.Intn(e.NumDocs())
				// An exact engine over the same raw rows normalizes each row
				// exactly once, just like the chain did — byte-comparable.
				if !reflect.DeepEqual(e.TopK(q, k), NewEngineExact(raw).TopK(q, k)) {
					t.Fatalf("trial %d worker %d batch %d: chained engine diverges from exact", trial, w, bi)
				}
			}
		}
	}
}

// TestExtendExactStaysExact pins that exact-only chains never grow a
// mirror: both Extend paths must preserve the opt-out.
func TestExtendExactStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	e := NewEngineExact(randomMatrix(rng, 40, 6))
	e1 := e.Extend(randomMatrix(rng, 10, 6)) // copy path
	e2 := e1.Extend(randomMatrix(rng, 10, 6)) // shared-tail path
	if e1.mir != nil || e2.mir != nil {
		t.Fatal("exact chain grew a mirror")
	}
	if e2.NumDocs() != 60 {
		t.Fatalf("chain covers %d docs", e2.NumDocs())
	}
}

// TestScreenBufReuse pins that steady-state screening does not allocate
// the O(n) score buffer on every query.
func TestScreenBufReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates per-op allocations past any honest budget")
	}
	rng := rand.New(rand.NewSource(25))
	e := NewEngine(randomMatrix(rng, 4000, 32))
	q := make([]float64, 32)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	e.TopK(q, 10) // warm the pool
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 40
	for i := 0; i < runs; i++ {
		e.TopK(q, 10)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.TotalAlloc-before.TotalAlloc) / runs
	// One query allocates qn, q32, selectors, goroutine closures — a few
	// KB — but must not re-allocate the 16 KB float32 score buffer.
	if budget := float64(4 * e.NumDocs() / 2); perOp > budget {
		t.Fatalf("screened TopK allocates %.0f B/op; want < %.0f (score buffer not pooled)", perOp, budget)
	}
}
