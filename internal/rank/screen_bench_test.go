package rank

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
)

const (
	benchDocs = 50000
	benchDim  = 100
)

func benchEngines(b *testing.B) (*Engine, *Engine, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(41))
	m := randomMatrix(rng, benchDocs, benchDim)
	q := make([]float64, benchDim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return NewEngineExact(m), NewEngine(m), q
}

func BenchmarkTopKExact(b *testing.B) {
	exact, _, q := benchEngines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(exact.TopK(q, 10)) != 10 {
			b.Fatal()
		}
	}
}

func BenchmarkTopKScreened(b *testing.B) {
	_, screened, q := benchEngines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(screened.TopK(q, 10)) != 10 {
			b.Fatal()
		}
	}
}

var benchSink64 float64
var benchSink32 float32

func BenchmarkScanDot64(b *testing.B) {
	exact, _, q := benchEngines(b)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var s float64
		for i := 0; i < benchDocs; i++ {
			s += dense.Dot(q, exact.docs.Row(i))
		}
		benchSink64 = s
	}
}

func BenchmarkScanDotF32(b *testing.B) {
	_, screened, q := benchEngines(b)
	q32 := make([]float32, benchDim)
	dense.ConvertF32(q32, q)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var s float32
		for i := 0; i < benchDocs; i++ {
			s += dense.DotF32(q32, screened.mir.docs.Row(i))
		}
		benchSink32 = s
	}
}
