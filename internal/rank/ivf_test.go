package rank

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dense"
)

// clusteredMatrix draws rows around nc well-separated unit centers with
// small spread — data where cluster pruning has something to prune,
// unlike isotropic gaussians whose cluster radii approach √2.
func clusteredMatrix(rng *rand.Rand, n, dim, nc int, spread float64) *dense.Matrix {
	centers := randomMatrix(rng, nc, dim)
	for i := 0; i < nc; i++ {
		dense.Normalize(centers.Row(i))
	}
	m := dense.New(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(nc))
		row := m.Row(i)
		for j := range row {
			row[j] = c[j] + spread*rng.NormFloat64()
		}
	}
	return m
}

// ivfEngine builds a screened engine over docs with a cluster index
// attached regardless of collection size (MinRows 1).
func ivfEngine(docs *dense.Matrix, cfg IVFConfig) *Engine {
	if cfg.MinRows == 0 {
		cfg.MinRows = 1
	}
	return NewEngine(docs).BuildIVF(cfg)
}

// TestIVFByteIdentical is the pinning test for the tentpole: across
// randomized engines — clustered and isotropic data, exact duplicate
// rows (tie-heavy scores), zero rows, k from 1 past n — the
// cluster-pruned TopK/TopKBatch must return results byte-identical to an
// exact-only engine over the same vectors.
func TestIVFByteIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(61))
	cases := []struct {
		n, dim    int
		clustered bool
	}{
		{50, 8, false},   // below screenCutoff: exact fallback, still identical
		{900, 24, true},  // clustered, serial scan
		{2600, 16, true}, // clustered, above scoreParallelCutoff
		{3000, 24, false}, // isotropic: bounds rarely prune, must still be exact
		{5000, 40, true},  // clustered, parallel, heavy ties
	}
	for _, tc := range cases {
		var docs *dense.Matrix
		if tc.clustered {
			docs = clusteredMatrix(rng, tc.n, tc.dim, 20, 0.05)
		} else {
			docs = randomMatrix(rng, tc.n, tc.dim)
		}
		for i := 2; i < tc.n; i += 5 {
			copy(docs.Row(i), docs.Row(i-1)) // manufacture exact score ties
		}
		for j := 0; j < tc.dim && tc.n > 9; j++ {
			docs.Set(9, j, 0) // a zero row must survive cluster pruning too
		}
		pruned := ivfEngine(docs, IVFConfig{})
		exact := NewEngineExact(docs)
		if tc.n >= screenCutoff/tc.dim {
			if _, _, ok := pruned.IVF(); !ok {
				t.Fatalf("n=%d: engine carries no index", tc.n)
			}
		}
		q := make([]float64, tc.dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		zq := make([]float64, tc.dim)
		for _, k := range []int{1, 2, 10, 100, tc.n / 2, tc.n - 1, tc.n, tc.n + 5} {
			got := pruned.TopK(q, k)
			want := exact.TopK(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: IVF TopK diverges\n got %v\nwant %v",
					tc.n, tc.dim, k, got, want)
			}
			if gz, wz := pruned.TopK(zq, k), exact.TopK(zq, k); !reflect.DeepEqual(gz, wz) {
				t.Fatalf("n=%d k=%d: zero-query divergence", tc.n, k)
			}
		}
		queries := randomMatrix(rng, batchBlock+7, tc.dim) // spans a ragged block
		for _, k := range []int{1, 9, tc.n} {
			got := pruned.TopKBatch(queries, k)
			want := exact.TopKBatch(queries, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d dim=%d k=%d: IVF TopKBatch diverges", tc.n, tc.dim, k)
			}
		}
	}
}

// TestIVFBoundsDominate is the satellite property test: for every cell,
// the certified upper bound computed at query time must dominate the
// exact float64 score of every member, across random queries — the
// inequality the skip rule rests on.
func TestIVFBoundsDominate(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial, docs := range []*dense.Matrix{
		clusteredMatrix(rng, 1500, 20, 12, 0.08),
		randomMatrix(rng, 1200, 16),
	} {
		e := ivfEngine(docs, IVFConfig{Clusters: 25})
		idx := e.ivf
		if idx == nil {
			t.Fatal("no index")
		}
		covered := 0
		for _, mem := range idx.members {
			covered += len(mem)
		}
		if covered != idx.rows || idx.rows != e.NumDocs() {
			t.Fatalf("trial %d: members cover %d of %d rows", trial, covered, idx.rows)
		}
		ubSlack := ivfUBSlack(e.Dim())
		for qi := 0; qi < 20; qi++ {
			q := make([]float64, e.Dim())
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			qn := normalizeCopy(q)
			for c, mem := range idx.members {
				ub := dense.Dot(qn, idx.cents.Row(c)) + idx.radius[c] + ubSlack
				for _, i := range mem {
					if s := dense.Dot(qn, e.docs.Row(int(i))); s > ub {
						t.Fatalf("trial %d query %d cell %d: member %d scores %v above bound %v",
							trial, qi, c, i, s, ub)
					}
				}
			}
		}
	}
}

// TestIVFExtendParity pins exactness against a stale index: racing
// Extend interleavings — shared-tail claims and losing-sibling copies —
// leave the original cluster index attached while the unclustered tail
// grows, and every produced engine must stay byte-identical to exact
// scoring. Run under -race by make race-hot.
func TestIVFExtendParity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(63))
	const dim = 12
	for trial := 0; trial < 6; trial++ {
		rootRaw := clusteredMatrix(rng, 1400+rng.Intn(300), dim, 10, 0.06)
		root := ivfEngine(rootRaw, IVFConfig{})
		if root.ivf == nil {
			t.Fatal("root carries no index")
		}
		const workers = 4
		batches := make([][]*dense.Matrix, workers)
		for w := 0; w < workers; w++ {
			n := 3 + rng.Intn(4)
			for b := 0; b < n; b++ {
				batches[w] = append(batches[w], randomMatrix(rng, 1+rng.Intn(30), dim))
			}
		}
		chains := make([][]*Engine, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cur := root
				for _, more := range batches[w] {
					cur = cur.Extend(more)
					chains[w] = append(chains[w], cur)
				}
			}(w)
		}
		wg.Wait()
		q := make([]float64, dim)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for w := 0; w < workers; w++ {
			raw := rootRaw
			for bi, e := range chains[w] {
				raw = raw.AugmentRows(batches[w][bi])
				if e.ivf != root.ivf {
					t.Fatalf("trial %d worker %d batch %d: index did not propagate", trial, w, bi)
				}
				k := 1 + rng.Intn(e.NumDocs())
				if !reflect.DeepEqual(e.TopK(q, k), NewEngineExact(raw).TopK(q, k)) {
					t.Fatalf("trial %d worker %d batch %d: stale-index engine diverges from exact",
						trial, w, bi)
				}
				// Rebuilding mid-chain shrinks the tail to zero; results must
				// not move.
				if bi == len(chains[w])-1 {
					re := e.BuildIVF(IVFConfig{MinRows: 1})
					if _, rows, ok := re.IVF(); !ok || rows != re.NumDocs() {
						t.Fatalf("trial %d worker %d: rebuild left %d of %d rows unclustered",
							trial, w, re.NumDocs()-rows, re.NumDocs())
					}
					if !reflect.DeepEqual(re.TopK(q, k), e.TopK(q, k)) {
						t.Fatalf("trial %d worker %d: rebuild moved results", trial, w)
					}
				}
			}
		}
	}
}

// TestIVFDeterministic pins reproducible builds: same rows and seed give
// identical member lists, centroids, and radii; a different seed may
// partition differently but results stay exact either way.
func TestIVFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	docs := clusteredMatrix(rng, 2000, 16, 15, 0.07)
	e := NewEngine(docs)
	a := e.BuildIVFIndex(IVFConfig{MinRows: 1})
	b := e.BuildIVFIndex(IVFConfig{MinRows: 1})
	if !reflect.DeepEqual(a.members, b.members) {
		t.Fatal("same seed produced different partitions")
	}
	if !reflect.DeepEqual(a.radius, b.radius) || !reflect.DeepEqual(a.cents.Data, b.cents.Data) {
		t.Fatal("same seed produced different certificates")
	}
	c := e.BuildIVFIndex(IVFConfig{MinRows: 1, Seed: 777})
	q := make([]float64, 16)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	exact := NewEngineExact(docs).TopK(q, 10)
	if !reflect.DeepEqual(e.WithIVFIndex(a).TopK(q, 10), exact) ||
		!reflect.DeepEqual(e.WithIVFIndex(c).TopK(q, 10), exact) {
		t.Fatal("seed choice changed exact results")
	}
}

// TestIVFStats checks the extended ScreenStats contract on the pruned
// path: cluster counts are consistent, scanned rows cover at least the
// candidates, and clustered queries scan fewer rows than the collection
// holds.
func TestIVFStats(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	docs := clusteredMatrix(rng, 4000, 24, 16, 0.04)
	e := ivfEngine(docs, IVFConfig{})
	// Query near a document so the best cluster seeds a tight threshold.
	q := append([]float64(nil), docs.Row(7)...)
	items, st := e.TopKWithStats(q, 10)
	if !st.Screened || st.ClustersTotal == 0 {
		t.Fatalf("pruned path did not report clusters: %+v", st)
	}
	if st.ClustersScanned < 1 || st.ClustersScanned > st.ClustersTotal {
		t.Fatalf("scanned %d of %d clusters", st.ClustersScanned, st.ClustersTotal)
	}
	if st.ScannedRows < st.Candidates || st.ScannedRows > e.NumDocs() {
		t.Fatalf("scanned rows %d outside [%d, %d]", st.ScannedRows, st.Candidates, e.NumDocs())
	}
	if st.ScannedRows >= e.NumDocs() {
		t.Fatalf("clustered query scanned every row (%d): pruning never engaged", st.ScannedRows)
	}
	if len(items) != 10 {
		t.Fatalf("got %d items", len(items))
	}
	if !reflect.DeepEqual(items, NewEngineExact(docs).TopK(q, 10)) {
		t.Fatal("pruned items diverge from exact")
	}
}

// TestTopKProbe exercises the approximate mode: any nprobe returns k
// well-formed results that are the exact top-k of the probed subset —
// so nprobe ≥ clusters is byte-identical to exact, and small nprobe
// still achieves high recall on clustered data where the certified
// ordering sends the query to the right cells first.
func TestTopKProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	docs := clusteredMatrix(rng, 4000, 24, 16, 0.04)
	// Cell count matching the data's true centers, so one probed cell can
	// plausibly hold a whole neighborhood (the default √n would split
	// each center across ~4 cells and dilute single-probe recall).
	e := ivfEngine(docs, IVFConfig{Clusters: 16})
	nc, _, _ := e.IVF()
	const k = 10
	exact := NewEngineExact(docs)
	hits, total := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := append([]float64(nil), docs.Row(rng.Intn(e.NumDocs()))...)
		want := exact.TopK(q, k)
		full, _ := e.TopKProbe(q, k, nc)
		if !reflect.DeepEqual(full, want) {
			t.Fatalf("query %d: nprobe=all diverges from exact", qi)
		}
		got, st := e.TopKProbe(q, k, 1)
		if len(got) != k {
			t.Fatalf("query %d: nprobe=1 returned %d of %d items", qi, len(got), k)
		}
		if st.ClustersScanned > 1 {
			t.Fatalf("query %d: nprobe=1 scanned %d clusters", qi, st.ClustersScanned)
		}
		inWant := make(map[int]bool, k)
		for _, it := range want {
			inWant[it.Doc] = true
		}
		for _, it := range got {
			total++
			if inWant[it.Doc] {
				hits++
			}
		}
	}
	// Queries sit on documents and clusters are tight, so even one probed
	// cell recovers most of the true top-10; anything below half signals
	// the ub ordering is visiting the wrong cells.
	if recall := float64(hits) / float64(total); recall < 0.5 {
		t.Fatalf("nprobe=1 recall@%d = %.2f on tightly clustered data", k, recall)
	}
	// An engine built with a default NProbe serves it through TopK.
	capped := ivfEngine(docs, IVFConfig{NProbe: 2})
	if _, st := capped.TopKWithStats(append([]float64(nil), docs.Row(3)...), k); st.ClustersScanned > 2 {
		t.Fatalf("configured nprobe=2 scanned %d clusters", st.ClustersScanned)
	}
}

// TestWithIVFIndexShapeGuard pins the misuse panic: attaching an index
// that covers more rows than the engine holds must fail loudly.
func TestWithIVFIndexShapeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	big := NewEngine(randomMatrix(rng, 600, 8))
	small := NewEngine(randomMatrix(rng, 100, 8))
	idx := big.BuildIVFIndex(IVFConfig{MinRows: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized index attached without panic")
		}
	}()
	small.WithIVFIndex(idx)
}
