package rank

import "math/bits"

// Skip is an immutable bitset of excluded (tombstoned) row indices. A
// nil Skip excludes nothing and costs one branch per scan — the serving
// tier passes nil until the first deletion, so the delete-free hot paths
// are unchanged. Set bits make the selection kernels behave as if the
// row did not exist: it is never scored, never offered to a selector,
// and never seeds a certified screening threshold, which keeps skipped
// results byte-identical to an engine built without those rows (pinned
// by test).
//
// Writers build a Skip with NewSkip/Set, publish it, and never mutate it
// again; readers only call Has/CountUpTo.
//
//lsilint:immutable
type Skip []uint64

// NewSkip returns an empty skip set covering rows [0, n).
func NewSkip(n int) Skip {
	return make(Skip, (n+63)/64)
}

// Set marks row i as skipped. Builder-side only — never call on a
// published Skip.
func (s Skip) Set(i int) {
	s[i>>6] |= 1 << (uint(i) & 63) //lsilint:ignore snapshotsafe — builder-side write before publication; callers construct via NewSkip and never mutate after handing the Skip to a snapshot
}

// Has reports whether row i is skipped. Safe on a nil receiver and on
// indices past the bitset (both report false), so kernels can run one
// shared implementation over engines larger than the set.
//
//lsilint:noalloc
func (s Skip) Has(i int) bool {
	w := i >> 6
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<(uint(i)&63)) != 0
}

// CountUpTo returns how many rows in [0, n) are skipped.
func (s Skip) CountUpTo(n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	full := n >> 6
	if full > len(s) {
		full = len(s)
	}
	c := 0
	for _, w := range s[:full] {
		c += bits.OnesCount64(w)
	}
	if rem := uint(n & 63); rem != 0 && full < len(s) {
		c += bits.OnesCount64(s[full] & (1<<rem - 1))
	}
	return c
}
