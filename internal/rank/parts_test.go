package rank

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dense"
)

// rebuildDocs replays what a snapshot restore does for the float64
// cache: unit-normalize a fresh clone of the raw vectors.
func rebuildDocs(raw *dense.Matrix) *dense.Matrix {
	docs := raw.Clone()
	for i := 0; i < docs.Rows; i++ {
		dense.Normalize(docs.Row(i))
	}
	return docs
}

// TestPartsRoundTrip pins the restore contract: an engine reassembled
// from Parts() plus renormalized raw vectors answers every query
// byte-identically to the original — flat, with int8 tier, and with an
// IVF index — and carries the same tier flags.
func TestPartsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4041))
	for _, tc := range []struct {
		name string
		n    int
		ivf  bool
	}{
		{"flat", 400, false},
		{"ivf", 1200, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := clusteredMatrix(rng, tc.n, 12, 7, 0.08)
			// A zero row and duplicate rows to exercise ties and scale-0.
			copy(raw.Row(1), make([]float64, 12))
			copy(raw.Row(2), raw.Row(3))
			orig := NewEngine(raw)
			if tc.ivf {
				orig = orig.BuildIVF(IVFConfig{MinRows: 1})
			}

			p := orig.Parts()
			restored, err := EngineFromParts(rebuildDocs(raw), p)
			if err != nil {
				t.Fatalf("EngineFromParts: %v", err)
			}
			if restored.Screening() != orig.Screening() ||
				restored.Int8Screening() != orig.Int8Screening() ||
				(restored.ivf != nil) != (orig.ivf != nil) {
				t.Fatalf("tier flags changed across round trip")
			}
			restored.checkMirror() // panics on any mirror drift

			skip := NewSkip(tc.n)
			skip.Set(5)
			skip.Set(17)
			for trial := 0; trial < 60; trial++ {
				q := make([]float64, 12)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				k := 1 + rng.Intn(20)
				want := orig.TopKSkip(q, k, skip)
				got := restored.TopKSkip(q, k, skip)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("k=%d trial=%d: restored engine diverged\nwant %v\ngot  %v",
						k, trial, want, got)
				}
			}
		})
	}
}

// TestPartsRejectsCorrupt pins the structural validation: mangled
// sections must fail EngineFromParts/IVFFromParts loudly, never build a
// silently wrong engine.
func TestPartsRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	raw := clusteredMatrix(rng, 600, 10, 5, 0.1)
	orig := NewEngine(raw).BuildIVF(IVFConfig{MinRows: 1})
	docs := rebuildDocs(raw)

	mangle := []struct {
		name string
		f    func(p *Parts)
	}{
		{"mirror-short", func(p *Parts) { p.Mirror = p.Mirror[:len(p.Mirror)-1] }},
		{"eps-short", func(p *Parts) { p.Eps = p.Eps[:10] }},
		{"q8-short", func(p *Parts) { p.Q8 = p.Q8[:len(p.Q8)-3] }},
		{"scale-short", func(p *Parts) { p.Scale = p.Scale[:1] }},
		{"q8-no-mirror", func(p *Parts) { p.Mirror = nil }},
		{"rows-wrong", func(p *Parts) { p.Rows-- }},
		{"ivf-dim", func(p *Parts) { p.IVF.Dim++ }},
		{"ivf-member-dup", func(p *Parts) { p.IVF.Members[0] = p.IVF.Members[1] }},
		{"ivf-member-oob", func(p *Parts) { p.IVF.Members[0] = int32(p.Rows) }},
		{"ivf-member-neg", func(p *Parts) { p.IVF.Members[0] = -1 }},
		{"ivf-count-over", func(p *Parts) { p.IVF.MemberCounts[0]++ }},
		{"ivf-count-under", func(p *Parts) { p.IVF.MemberCounts[0]-- }},
		{"ivf-radius-neg", func(p *Parts) { p.IVF.Radius[0] = -1 }},
		{"ivf-cents-short", func(p *Parts) { p.IVF.Cents = p.IVF.Cents[:3] }},
	}
	// Parts() hands out views of the engine's own arrays, so each mangle
	// works on a deep copy — writing through a view would corrupt orig.
	clone := func() *Parts {
		p := orig.Parts()
		c := *p
		c.Mirror = append([]float32(nil), p.Mirror...)
		c.Eps = append([]float64(nil), p.Eps...)
		c.Q8 = append([]int8(nil), p.Q8...)
		c.Scale = append([]float64(nil), p.Scale...)
		c.Eps8 = append([]float64(nil), p.Eps8...)
		if p.IVF != nil {
			iv := *p.IVF
			iv.Cents = append([]float64(nil), p.IVF.Cents...)
			iv.Radius = append([]float64(nil), p.IVF.Radius...)
			iv.MemberCounts = append([]int32(nil), p.IVF.MemberCounts...)
			iv.Members = append([]int32(nil), p.IVF.Members...)
			c.IVF = &iv
		}
		return &c
	}
	for _, m := range mangle {
		t.Run(m.name, func(t *testing.T) {
			p := clone()
			m.f(p)
			if _, err := EngineFromParts(docs, p); err == nil {
				t.Fatalf("corruption %q accepted", m.name)
			}
		})
	}
	// And the unmangled control still loads.
	if _, err := EngineFromParts(docs, orig.Parts()); err != nil {
		t.Fatalf("control failed: %v", err)
	}
}
