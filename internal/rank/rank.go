// Package rank is the query scoring engine: bounded top-k selection and
// cached-norm cosine scoring over a set of document vectors. It addresses
// the §5.6 open issue of "efficiently comparing queries to documents
// (i.e., finding near neighbors in high-dimension spaces)" on the serving
// side — the per-query costs that dominate a deployed retrieval service.
//
// Three ideas, composable:
//
//  1. Cached norms (Engine): keep a unit-normalized copy of the document
//     matrix so a query cosine is a single dot product instead of a dot
//     plus two norm passes — the norm half of the scan is paid once at
//     build time instead of on every query.
//  2. Bounded selection (TopK): callers almost always want the z best
//     documents, not all n sorted; per-worker min-heaps merged at the
//     barrier select them in O(n log z) instead of the O(n log n) full
//     sort, with the same deterministic order (score desc, doc asc).
//  3. Batched scoring (Engine.TopKBatch): a block of queries against the
//     normalized matrix is one gemm Q·Dᵀ, which the tiled parallel
//     dense.MulBT turns into cache-blocked row sweeps.
package rank

import (
	"runtime"
	"sort"
	"sync"
)

// Item is one scored document.
type Item struct {
	Doc   int
	Score float64
}

// Less reports whether a ranks strictly before b: higher score first,
// lower doc id on ties. This is the total order every selection and sort
// in the package uses, so heap-selected prefixes are byte-identical to
// sorted full rankings.
func Less(a, b Item) bool {
	if a.Score != b.Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// Sort orders items into ranking order (score desc, doc asc).
func Sort(items []Item) {
	sort.Slice(items, func(i, j int) bool { return Less(items[i], items[j]) })
}

// selectParallelCutoff is the element count above which TopK shards the
// scan across goroutines; selection is cheap per element, so small inputs
// stay serial.
const selectParallelCutoff = 1 << 14

// TopK selects the k best (score, doc) pairs in ranking order. ids maps
// position → document id (nil for identity). The result equals sorting
// everything with Less and truncating to k — including tie order —
// because selection under a strict total order is permutation-invariant.
func TopK(scores []float64, ids []int, k int) []Item {
	return TopKSkip(scores, ids, k, nil)
}

// TopKSkip is TopK with positions in skip excluded from selection, as if
// those entries were not present: they are never offered, and k clamps to
// the live count. A nil skip is exactly TopK.
func TopKSkip(scores []float64, ids []int, k int, skip Skip) []Item {
	n := len(scores)
	if live := n - skip.CountUpTo(n); k > live {
		k = live
	}
	if k <= 0 {
		return []Item{}
	}
	nw := runtime.GOMAXPROCS(0)
	if n < selectParallelCutoff || nw < 2 {
		s := newSelector(k)
		offerScores(s, scores, ids, skip, 0, n)
		return s.finish()
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			offerScores(s, scores, ids, skip, lo, hi)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeSelectors(sels, k)
}

// offerScores feeds scores[lo:hi] through the selector, honoring the skip
// set. The nil-skip branch is hoisted out of the loop so the delete-free
// path pays nothing per element.
//
//lsilint:noalloc
func offerScores(s *selector, scores []float64, ids []int, skip Skip, lo, hi int) {
	if skip == nil {
		for i := lo; i < hi; i++ {
			s.offer(Item{Doc: docID(ids, i), Score: scores[i]})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		s.offer(Item{Doc: docID(ids, i), Score: scores[i]})
	}
}

func docID(ids []int, i int) int {
	if ids == nil {
		return i
	}
	return ids[i]
}

// MergeTopK merges per-source rankings into the global top-k under the
// package's total order: concatenate, sort with Less, truncate. Because
// Less is a strict total order, selection is permutation-invariant — as
// long as each list holds an exact local top-k (or everything its source
// has, when the source is smaller than k), the merge equals sorting the
// union of all source items and truncating to k, tie order included.
// This is the identity both the in-engine barrier merge (per-worker
// selector survivors) and the sharded scatter–gather tier
// (internal/shard, per-shard exact top-ks) rely on for byte-exact
// results. The input lists are not mutated.
func MergeTopK(k int, lists ...[]Item) []Item {
	if k <= 0 {
		return []Item{}
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Item, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	Sort(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// mergeSelectors merges the per-worker survivors (≤ k each) through
// MergeTopK: the global top-k is a subset of the union of the per-shard
// top-ks.
func mergeSelectors(sels []*selector, k int) []Item {
	lists := make([][]Item, 0, len(sels))
	for _, s := range sels {
		if s != nil {
			lists = append(lists, s.h)
		}
	}
	return MergeTopK(k, lists...)
}

// selector is a bounded min-heap on the ranking order: h[0] is the
// currently-worst kept item, evicted when a strictly better one arrives.
type selector struct {
	k int
	h []Item
}

func newSelector(k int) *selector {
	return &selector{k: k, h: make([]Item, 0, k)}
}

// after reports whether a ranks strictly after b — the heap's "less".
func after(a, b Item) bool { return Less(b, a) }

// offer runs once per candidate on every scoring hot path, so it must
// not allocate: the heap slice is created with capacity k in newSelector
// and append below can never grow it past that.
//
//lsilint:noalloc
func (s *selector) offer(it Item) {
	if len(s.h) < s.k {
		// Capacity k is pre-claimed in newSelector; this append only extends
		// the length within it and never reallocates.
		s.h = append(s.h, it) //lsilint:ignore noalloc

		s.up(len(s.h) - 1)
		return
	}
	if Less(it, s.h[0]) {
		s.h[0] = it
		s.down(0)
	}
}

func (s *selector) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !after(s.h[i], s.h[p]) {
			break
		}
		s.h[i], s.h[p] = s.h[p], s.h[i]
		i = p
	}
}

func (s *selector) down(i int) {
	n := len(s.h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && after(s.h[l], s.h[worst]) {
			worst = l
		}
		if r < n && after(s.h[r], s.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.h[i], s.h[worst] = s.h[worst], s.h[i]
		i = worst
	}
}

// finish returns the kept items in ranking order.
func (s *selector) finish() []Item {
	Sort(s.h)
	return s.h
}
