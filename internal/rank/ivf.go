package rank

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dense"
)

// Cluster-pruned exact top-k: an IVF-style coarse index over the float32
// screening mirror. Deterministic k-means partitions the clustered row
// prefix into nc ≈ √n cells; each cell stores a float64 unit centroid ĉ,
// a certified member radius r_c, and its member row list. A query first
// ranks cells by the certified upper bound
//
//	ub_c = fl(qn·ĉ) + r_c + ubSlack ≥ fl64(qn·v_i)   for every member i,
//
// which follows from Cauchy–Schwarz on qn·v = qn·ĉ + qn·(v − ĉ):
//
//	qn·v_i ≤ qn·ĉ + ‖qn‖·‖v_i − ĉ‖ ≤ qn·ĉ + r_c      (real arithmetic)
//
// with r_c = max_i ‖v_i − ĉ‖ inflated by boundSlack at build time, and
// ubSlack absorbing the float64 summation rounding of both dot products
// (γ64 each, ‖qn‖, ‖v‖, ‖ĉ‖ ≤ 1 + ulps — see ivfUBSlack).
//
// Scanning then proceeds cell by cell in decreasing ub order, screening
// member rows through the same float32 bracket machinery as screen.go
// (lb_i = s32_i − ε_i − slack feeds a bounded selector). Once the
// selector holds k certified lower bounds, any cell with ub_c < L (the
// kth largest lb seen) can be skipped outright: every member's exact
// score is ≤ ub_c < L ≤ (kth best exact score), so no member can enter
// the top-k even on ties — and because cells are visited in decreasing
// ub order, the first skip terminates the scan. Rows appended by Extend
// after the index was built form the "unclustered tail", which is always
// scanned, so a stale index only costs speed, never exactness. The
// surviving candidates are rescored with the exact float64 kernels and
// selected under the usual total order — byte-identical to
// NewEngineExact at every point of the Extend chain (pinned by test).
//
// The opt-in approximate mode caps the scan at nprobe cells (after the
// tail and after at least k rows have been seen), trading recall for
// latency; the certified threshold still applies within the scanned
// subset, so approximate results are the exact top-k of the probed rows.

// IVFConfig parameterizes BuildIVF/BuildIVFIndex. The zero value gets
// production defaults: √n clusters, exact search, a fixed seed, and the
// DefaultIVFMinRows build floor.
type IVFConfig struct {
	// Clusters is the number of k-means cells; 0 picks ⌈√n⌉.
	Clusters int
	// NProbe caps how many cells a query scans (approximate mode);
	// 0 scans until the certified bound proves no cell can contribute,
	// which keeps results exact.
	NProbe int
	// Seed feeds the deterministic k-means PRNG; 0 uses a fixed default.
	Seed uint64
	// MinRows is the smallest collection worth indexing; 0 uses
	// DefaultIVFMinRows. Below the floor BuildIVFIndex returns nil.
	MinRows int
}

// DefaultIVFMinRows is the build floor: below it a full mirror scan is
// already cheap and index maintenance would cost more than it saves.
const DefaultIVFMinRows = 4096

const (
	// ivfSampleFactor bounds the k-means training sample at
	// clusters×factor rows — the standard coarse-quantizer recipe: the
	// centroids only need the data's shape, not every row.
	ivfSampleFactor = 64
	// ivfMaxIters bounds Lloyd iterations; the loop exits early when the
	// sample assignment stabilizes.
	ivfMaxIters = 8
	// ivfAssignBlock is how many rows one assignment gemm covers, keeping
	// the score block a few MB regardless of collection size.
	ivfAssignBlock = 4096
	// ivfSeedDefault is the fixed k-means seed (splitmix64's golden-ratio
	// increment) — index builds are reproducible byte for byte.
	ivfSeedDefault = 0x9E3779B97F4A7C15
)

// IVFIndex is an immutable cluster index over a row prefix of an engine
// chain. It stores no row data — only centroids, certified radii, and
// member id lists — so it is shared across Extend successors (the prefix
// rows it describes are append-only) and re-attached after background
// rebuilds via WithIVFIndex.
//
//lsilint:immutable
type IVFIndex struct {
	rows   int // row prefix covered; rows beyond are the unclustered tail
	dim    int
	nprobe int
	// cents holds one float64 unit (or zero) centroid per cell; the
	// certified bound is evaluated against these, never the float32
	// k-means centroids that shaped the partition.
	cents *dense.Matrix
	// radius[c] ≥ max over members ‖v64_i − ĉ_c‖, boundSlack-inflated.
	radius []float64
	// members[c] lists the rows of cell c; every row in [0, rows) appears
	// in exactly one cell.
	members [][]int32
}

// Clusters returns the number of k-means cells.
func (ix *IVFIndex) Clusters() int { return len(ix.members) }

// Rows returns the clustered row prefix the index covers.
func (ix *IVFIndex) Rows() int { return ix.rows }

// NProbe returns the configured cluster-scan cap (0 = exact).
func (ix *IVFIndex) NProbe() int { return ix.nprobe }

// splitmix64 is the deterministic PRNG behind k-means seeding and
// sampling: no global rand, no wall clock, identical sequences on every
// build with the same seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

func (s *splitmix64) float64() float64 { return float64(s.next()>>11) * 0x1p-53 }

// BuildIVF returns a new Engine sharing this engine's storage with a
// freshly built cluster index attached — the convenience form of
// BuildIVFIndex + WithIVFIndex. It returns the receiver unchanged when
// the engine is exact-only or below the build floor.
func (e *Engine) BuildIVF(cfg IVFConfig) *Engine {
	return e.WithIVFIndex(e.BuildIVFIndex(cfg))
}

// BuildIVFIndex runs deterministic k-means over the engine's current
// rows and returns the certified cluster index, or nil when the engine
// has no mirror to cluster or is below the build floor. The build only
// reads rows below the engine's own length, so it is safe to run in the
// background while successors extend the shared tail.
func (e *Engine) BuildIVFIndex(cfg IVFConfig) *IVFIndex {
	if e.mir == nil || e.docs.Cols == 0 {
		return nil
	}
	minRows := cfg.MinRows
	if minRows <= 0 {
		minRows = DefaultIVFMinRows
	}
	n := e.docs.Rows
	if n < minRows {
		return nil
	}
	nc := cfg.Clusters
	if nc <= 0 {
		nc = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if nc > n {
		nc = n
	}
	if nc < 1 {
		nc = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = ivfSeedDefault
	}
	nprobe := cfg.NProbe
	if nprobe < 0 {
		nprobe = 0
	}
	members := kmeansMembers(e.mir.docs, n, nc, seed)
	cents, radius := certifyClusters(e.docs, n, members)
	return &IVFIndex{rows: n, dim: e.docs.Cols, nprobe: nprobe,
		cents: cents, radius: radius, members: members}
}

// WithIVFIndex returns an engine view with idx attached, sharing every
// backing array with the receiver. The index may have been built by this
// engine or by any ancestor in the same append-only chain — rows beyond
// idx.Rows() form the always-scanned unclustered tail. A nil index (or
// an exact-only engine) returns the receiver unchanged.
func (e *Engine) WithIVFIndex(idx *IVFIndex) *Engine {
	if idx == nil || e.mir == nil {
		return e
	}
	if idx.rows > e.docs.Rows || idx.dim != e.docs.Cols {
		panic(fmt.Sprintf("rank: IVF index covers %d rows × %d dims, engine has %d × %d",
			idx.rows, idx.dim, e.docs.Rows, e.docs.Cols))
	}
	ne := *e
	ne.ivf = idx
	return &ne
}

// IVF reports the attached cluster index: cell count and the clustered
// row prefix. ok is false when the engine carries no index.
func (e *Engine) IVF() (clusters, clusteredRows int, ok bool) {
	if e.ivf == nil {
		return 0, 0, false
	}
	return len(e.ivf.members), e.ivf.rows, true
}

// MirrorMaxEps returns the engine-wide worst per-row quantization
// residual of the screening mirror (0 without a mirror) — the scalar the
// server mirrors into /stats and /metrics.
func (e *Engine) MirrorMaxEps() float64 {
	if e.mir == nil {
		return 0
	}
	return e.mir.maxEps
}

// kmeansMembers partitions rows [0, n) of the mirror into nc cells:
// k-means++ seeding and Lloyd iterations over a deterministic training
// sample, then one full gemm-blocked assignment pass. Everything that
// touches row data runs in float32 (the partition only shapes
// performance); everything is deterministic for a fixed seed.
func kmeansMembers(mir32 *dense.MatrixF32, n, nc int, seed uint64) [][]int32 {
	dim := mir32.Cols
	rng := splitmix64(seed)

	// Training sample: all rows when small, else a deterministic
	// partial Fisher–Yates draw, sorted for gather locality.
	train := &dense.MatrixF32{Rows: n, Cols: dim, Data: mir32.Data[:n*dim]}
	if s := nc * ivfSampleFactor; n > s {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := 0; i < s; i++ {
			j := i + rng.intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		ids := perm[:s]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		train = dense.NewF32(s, dim)
		for i, id := range ids {
			copy(train.Row(i), mir32.Row(int(id)))
		}
	}
	s := train.Rows
	trainNorm := make([]float64, s)
	for i := range trainNorm {
		r := train.Row(i)
		trainNorm[i] = float64(dense.DotF32(r, r))
	}

	// k-means++ seeding: each new centroid is drawn with probability
	// proportional to the squared distance to the nearest chosen one.
	cents := dense.NewF32(nc, dim)
	minD := make([]float64, s)
	copy(cents.Row(0), train.Row(rng.intn(s)))
	seedMinDist(minD, trainNorm, train, cents.Row(0), true)
	for j := 1; j < nc; j++ {
		var total float64
		for _, d := range minD {
			total += d
		}
		pick := s - 1
		if total > 0 {
			r := rng.float64() * total
			var acc float64
			for i, d := range minD {
				acc += d
				if acc > r {
					pick = i
					break
				}
			}
		} else {
			// Every sample row coincides with a centroid (heavy
			// duplication): fall back to a uniform draw.
			pick = rng.intn(s)
		}
		copy(cents.Row(j), train.Row(pick))
		seedMinDist(minD, trainNorm, train, cents.Row(j), false)
	}

	// Lloyd iterations on the sample. adj caches ‖c_j‖²/2 so assignment
	// is argmax(row·c − adj) — nearest centroid under squared Euclidean.
	adj := make([]float32, nc)
	refreshAdj(adj, cents)
	assign := make([]int32, s)
	prev := make([]int32, s)
	block := dense.NewF32(minInt(s, ivfAssignBlock), nc)
	sums := dense.New(nc, dim)
	counts := make([]int, nc)
	for it := 0; it < ivfMaxIters; it++ {
		assignRowsF32(train, cents, adj, assign, block)
		if it > 0 && int32SlicesEqual(assign, prev) {
			break
		}
		copy(prev, assign)
		for i := range sums.Data {
			sums.Data[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i, c := range assign {
			dense.AccumF32(sums.Row(int(c)), train.Row(i))
			counts[c]++
		}
		for c := 0; c < nc; c++ {
			if counts[c] == 0 {
				continue // empty cell keeps its previous centroid
			}
			row := sums.Row(c)
			inv := 1 / float64(counts[c])
			for i := range row {
				row[i] *= inv
			}
			dense.ConvertF32(cents.Row(c), row)
		}
		refreshAdj(adj, cents)
	}

	// Full assignment pass over every row, then a counting sort into
	// per-cell member lists backed by one allocation.
	full := make([]int32, n)
	fullBlock := block
	if n < train.Rows || train.Rows < minInt(n, ivfAssignBlock) {
		fullBlock = dense.NewF32(minInt(n, ivfAssignBlock), nc)
	}
	assignRowsF32(&dense.MatrixF32{Rows: n, Cols: dim, Data: mir32.Data[:n*dim]},
		cents, adj, full, fullBlock)
	for c := range counts {
		counts[c] = 0
	}
	for _, c := range full {
		counts[c]++
	}
	backing := make([]int32, n)
	members := make([][]int32, nc)
	off := 0
	for c := 0; c < nc; c++ {
		members[c] = backing[off : off : off+counts[c]]
		off += counts[c]
	}
	for i, c := range full {
		members[c] = append(members[c], int32(i))
	}
	return members
}

// seedMinDist folds the squared distance to a new centroid into the
// per-row minimum, sharding rows across workers — each row's value
// depends only on itself, so the result is deterministic for any worker
// count.
func seedMinDist(minD, trainNorm []float64, train *dense.MatrixF32, cent []float32, first bool) {
	cn := float64(dense.DotF32(cent, cent))
	update := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := trainNorm[i] + cn - 2*float64(dense.DotF32(train.Row(i), cent))
			if d < 0 {
				d = 0
			}
			if first || d < minD[i] {
				minD[i] = d
			}
		}
	}
	s := len(minD)
	nw := runtime.GOMAXPROCS(0)
	if s*train.Cols < scoreParallelCutoff || nw < 2 {
		update(0, s)
		return
	}
	if nw > s {
		nw = s
	}
	var wg sync.WaitGroup
	chunk := (s + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > s {
			hi = s
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			update(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// assignRowsF32 writes each row's nearest-centroid cell into out, one
// gemm-blocked sweep: scores = rows·centsᵀ via the tiled parallel
// float32 gemm, then a fixed-order argmax per row.
func assignRowsF32(rows, cents *dense.MatrixF32, adj []float32, out []int32, block *dense.MatrixF32) {
	bs := block.Rows
	for lo := 0; lo < rows.Rows; lo += bs {
		hi := lo + bs
		if hi > rows.Rows {
			hi = rows.Rows
		}
		view := &dense.MatrixF32{Rows: hi - lo, Cols: rows.Cols,
			Data: rows.Data[lo*rows.Cols : hi*rows.Cols]}
		sb := block
		if view.Rows != block.Rows {
			sb = &dense.MatrixF32{Rows: view.Rows, Cols: block.Cols,
				Data: block.Data[:view.Rows*block.Cols]}
		}
		dense.MulBTF32Into(sb, view, cents)
		for r := 0; r < view.Rows; r++ {
			out[lo+r] = int32(dense.ArgBestF32(sb.Row(r), adj))
		}
	}
}

func refreshAdj(adj []float32, cents *dense.MatrixF32) {
	for c := range adj {
		row := cents.Row(c)
		adj[c] = 0.5 * dense.DotF32(row, row)
	}
}

func int32SlicesEqual(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// certifyClusters computes, per cell, the float64 unit centroid and the
// certified member radius — entirely against the float64 cache, so the
// bound holds regardless of how the float32 partition was shaped. Cells
// are independent; the per-cell work is serial in member order, so the
// result is deterministic for any worker count.
func certifyClusters(docs *dense.Matrix, n int, members [][]int32) (*dense.Matrix, []float64) {
	nc := len(members)
	cents := dense.New(nc, docs.Cols)
	radius := make([]float64, nc)
	certify := func(c int) {
		mem := members[c]
		if len(mem) == 0 {
			return // zero centroid, zero radius: ub collapses to ubSlack
		}
		row := cents.Row(c)
		for _, i := range mem {
			dense.Axpy(1, docs.Row(int(i)), row)
		}
		inv := 1 / float64(len(mem))
		for j := range row {
			row[j] *= inv
		}
		dense.Normalize(row)
		var r float64
		for _, i := range mem {
			if d := dense.DistNorm2(docs.Row(int(i)), row); d > r {
				r = d
			}
		}
		radius[c] = r * boundSlack
	}
	nw := runtime.GOMAXPROCS(0)
	if nw < 2 || nc < 2 || n*docs.Cols < scoreParallelCutoff {
		for c := 0; c < nc; c++ {
			certify(c)
		}
		return cents, radius
	}
	if nw > nc {
		nw = nc
	}
	var wg sync.WaitGroup
	chunk := (nc + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > nc {
			hi = nc
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				certify(c)
			}
		}(lo, hi)
	}
	wg.Wait()
	return cents, radius
}

// ivfUBSlack is the query-time float correction of the cluster bound:
// one γ64 for the float64 rounding of the member score fl(qn·v) and one
// for the centroid dot fl(qn·ĉ), with ‖qn‖, ‖v‖, ‖ĉ‖ ≤ 1 + a few ulps
// (all three are float64-normalized), inflated by boundSlack so the
// bound arithmetic itself cannot shave a true candidate.
func ivfUBSlack(dim int) float64 {
	n1 := float64(dim + 1)
	const u64 = 0x1p-53
	g64 := n1 * u64 / (1 - n1*u64)
	return 2 * g64 * (1 + 1e-12) * boundSlack
}

// ivfScratch recycles the per-query gathered-candidate buffers (row ids
// and screened scores for every scanned row), sized to the largest
// collection served, so steady-state cluster scans allocate nothing
// proportional to n.
type ivfScratch struct {
	ids []int32
	s32 []float32
	// d8 holds the raw integer dot of each gathered row on the three-tier
	// path (unused, zero-length reslice cost, when the engine has no int8
	// tier).
	d8 []int32
}

var ivfScratchPool = sync.Pool{New: func() any { return new(ivfScratch) }}

func getIVFScratch(n int) *ivfScratch {
	sc := ivfScratchPool.Get().(*ivfScratch)
	if cap(sc.ids) < n {
		sc.ids = make([]int32, n)
		sc.s32 = make([]float32, n)
		sc.d8 = make([]int32, n)
	}
	sc.ids = sc.ids[:n]
	sc.s32 = sc.s32[:n]
	sc.d8 = sc.d8[:n]
	return sc
}

// ivfCellOrder ranks the index cells for a normalized query: certified
// upper bounds plus the deterministic decreasing-ub visit order.
func (e *Engine) ivfCellOrder(qn []float64) ([]float64, []int) {
	idx := e.ivf
	nc := len(idx.members)
	ubs := make([]float64, nc)
	ubSlack := ivfUBSlack(e.docs.Cols)
	for c := range ubs {
		ubs[c] = dense.Dot(qn, idx.cents.Row(c)) + idx.radius[c] + ubSlack
	}
	order := make([]int, nc)
	for c := range order {
		order[c] = c
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if ubs[ca] != ubs[cb] { //lsilint:ignore floatcmp — deterministic visit order needs bit equality on ties
			return ubs[ca] > ubs[cb]
		}
		return ca < cb
	})
	return ubs, order
}

// topKIVF is the cluster-pruned scan. Callers guarantee screenable(k),
// k ≤ live rows, and e.ivf != nil; nprobe ≤ 0 scans until the certified
// bound terminates the sweep (exact), nprobe > 0 additionally caps the
// scan at nprobe cells once at least k rows have been seen. Skipped rows
// are excluded at gather time, so they never enter the scratch arrays
// and the later passes need no skip test; a cell's certified ub stays
// valid for its surviving members (the radius only loosens when the
// tombstoned row was the farthest member). With an int8 tier the gather
// sweep reads the quantized rows and its selector carries coarse lower
// bounds; the cell-skip test is unchanged, because any certified lower
// bound ≤ the corresponding exact score makes ubs[c] < L a proof that no
// member of c reaches the top-k.
func (e *Engine) topKIVF(qn []float64, k, nprobe int, skip Skip) ([]Item, ScreenStats) {
	if e.mir.q8 != nil {
		return e.topKIVF8(qn, k, nprobe, skip)
	}
	q32 := make([]float32, len(qn))
	dense.ConvertF32(q32, qn)
	slack := e.screenSlack(qn, q32)
	idx := e.ivf
	ubs, order := e.ivfCellOrder(qn)
	sc := getIVFScratch(e.docs.Rows)
	sel := newSelector(k)
	// The unclustered tail — rows appended after the index was built —
	// is always scanned: it both seeds the threshold and keeps a stale
	// index exact.
	m := e.gatherRange(sel, sc.ids, sc.s32, q32, slack, idx.rows, e.docs.Rows, 0, skip)
	scanned := 0
	for _, c := range order {
		if len(sel.h) >= k {
			if ubs[c] < sel.h[0].Score {
				break // certified: no remaining cell can reach the top-k
			}
			if nprobe > 0 && scanned >= nprobe {
				break // approximate mode: probe budget spent
			}
		}
		m = e.gatherMembers(sel, sc.ids, sc.s32, q32, slack, idx.members[c], m, skip)
		scanned++
	}
	low := math.Inf(-1)
	if len(sel.h) >= k {
		low = sel.h[0].Score // kth largest certified lower bound
	}
	rsel := newSelector(k)
	cands := e.rescoreGathered(rsel, sc.ids, sc.s32, qn, slack, low, m)
	items := rsel.finish()
	st := ScreenStats{Screened: true, Candidates: cands,
		ClustersTotal: len(idx.members), ClustersScanned: scanned, ScannedRows: m}
	ivfScratchPool.Put(sc)
	return items, st
}

// topKIVF8 is topKIVF with the int8 coarse tier in front: the gather
// sweep reads quantized rows at a byte per coordinate and seeds the
// selector with coarse lower bounds; after the sweep, gathered rows
// whose coarse upper bound clears the threshold promote (in place) to
// the float32 bracket, and the standard gathered rescore finishes in
// float64 — byte-identical to the f32 path by the same stacked-threshold
// argument as promoteRescore8 in screen8.go.
func (e *Engine) topKIVF8(qn []float64, k, nprobe int, skip Skip) ([]Item, ScreenStats) {
	q := e.quantizeQuery(qn)
	idx := e.ivf
	ubs, order := e.ivfCellOrder(qn)
	sc := getIVFScratch(e.docs.Rows)
	sel := newSelector(k)
	m := e.gatherRange8(sel, sc.ids, sc.d8, q, idx.rows, e.docs.Rows, 0, skip)
	scanned := 0
	for _, c := range order {
		if len(sel.h) >= k {
			if ubs[c] < sel.h[0].Score {
				break // certified against the coarse lower bounds too
			}
			if nprobe > 0 && scanned >= nprobe {
				break
			}
		}
		m = e.gatherMembers8(sel, sc.ids, sc.d8, q, idx.members[c], m, skip)
		scanned++
	}
	low8 := math.Inf(-1)
	if len(sel.h) >= k {
		low8 = sel.h[0].Score
	}
	psel := newSelector(k)
	p := e.promoteGathered8(psel, sc.ids, sc.d8, sc.s32, q, low8, m)
	low32 := math.Inf(-1)
	if len(psel.h) >= k {
		low32 = psel.h[0].Score
	}
	rsel := newSelector(k)
	cands := e.rescoreGathered(rsel, sc.ids, sc.s32, qn, q.slack32, low32, p)
	items := rsel.finish()
	st := ScreenStats{Screened: true, Candidates: cands, Promoted: p,
		ClustersTotal: len(idx.members), ClustersScanned: scanned, ScannedRows: m}
	ivfScratchPool.Put(sc)
	return items, st
}

// gatherRange screens rows [lo, hi) of the mirror, recording each row id
// and float32 score into the scratch arrays at position m onward and
// feeding certified lower bounds through the selector; it returns the
// new fill count. The serial stage-1 kernel of the tail scan.
//
//lsilint:noalloc
func (e *Engine) gatherRange(s *selector, ids []int32, s32 []float32, q32 []float32, slack float64, lo, hi, m int, skip Skip) int {
	if skip == nil {
		for i := lo; i < hi; i++ {
			sc := dense.DotF32(q32, e.mir.docs.Row(i))
			ids[m] = int32(i)
			s32[m] = sc
			m++
			s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
		}
		return m
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		sc := dense.DotF32(q32, e.mir.docs.Row(i))
		ids[m] = int32(i)
		s32[m] = sc
		m++
		s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
	}
	return m
}

// gatherMembers is gatherRange over a cell's member list — the
// cluster-scan kernel: an int32-gathered float32 sweep of the mirror.
//
//lsilint:noalloc
func (e *Engine) gatherMembers(s *selector, ids []int32, s32 []float32, q32 []float32, slack float64, mem []int32, m int, skip Skip) int {
	if skip == nil {
		for _, id := range mem {
			i := int(id)
			sc := dense.DotF32(q32, e.mir.docs.Row(i))
			ids[m] = id
			s32[m] = sc
			m++
			s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
		}
		return m
	}
	for _, id := range mem {
		i := int(id)
		if skip.Has(i) {
			continue
		}
		sc := dense.DotF32(q32, e.mir.docs.Row(i))
		ids[m] = id
		s32[m] = sc
		m++
		s.offer(Item{Doc: i, Score: float64(sc) - e.mir.eps[i] - slack})
	}
	return m
}

// gatherRange8 is gatherRange against the int8 tier: rows [lo, hi) get
// an exact integer dot, the raw dot lands in the d8 scratch, and the
// certified coarse lower bound feeds the selector.
//
//lsilint:noalloc
func (e *Engine) gatherRange8(s *selector, ids []int32, d8 []int32, q *q8query, lo, hi, m int, skip Skip) int {
	mir := e.mir
	if skip == nil {
		for i := lo; i < hi; i++ {
			d := dense.DotI8(q.qq8, mir.q8.Row(i))
			ids[m] = int32(i)
			d8[m] = d
			m++
			c := mir.scale[i] * q.sq * float64(d)
			s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
		}
		return m
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		d := dense.DotI8(q.qq8, mir.q8.Row(i))
		ids[m] = int32(i)
		d8[m] = d
		m++
		c := mir.scale[i] * q.sq * float64(d)
		s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
	}
	return m
}

// gatherMembers8 is gatherRange8 over a cell's member list — the
// three-tier cluster-scan kernel.
//
//lsilint:noalloc
func (e *Engine) gatherMembers8(s *selector, ids []int32, d8 []int32, q *q8query, mem []int32, m int, skip Skip) int {
	mir := e.mir
	if skip == nil {
		for _, id := range mem {
			i := int(id)
			d := dense.DotI8(q.qq8, mir.q8.Row(i))
			ids[m] = id
			d8[m] = d
			m++
			c := mir.scale[i] * q.sq * float64(d)
			s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
		}
		return m
	}
	for _, id := range mem {
		i := int(id)
		if skip.Has(i) {
			continue
		}
		d := dense.DotI8(q.qq8, mir.q8.Row(i))
		ids[m] = id
		d8[m] = d
		m++
		c := mir.scale[i] * q.sq * float64(d)
		s.offer(Item{Doc: i, Score: c - mir.eps8[i]*q.epsMul - q.slack8})
	}
	return m
}

// promoteGathered8 compacts the m gathered rows in place, keeping (at
// position p ≤ j) exactly those whose coarse upper bound clears low8,
// scoring the keepers through the float32 mirror and feeding their
// certified float32 lower bounds through the selector. Returns the
// promoted count; afterward ids[:p]/s32[:p] are exactly what
// rescoreGathered expects.
//
//lsilint:noalloc
func (e *Engine) promoteGathered8(s *selector, ids []int32, d8 []int32, s32 []float32, q *q8query, low8 float64, m int) int {
	mir := e.mir
	p := 0
	for j := 0; j < m; j++ {
		i := int(ids[j])
		c := mir.scale[i] * q.sq * float64(d8[j])
		if c+mir.eps8[i]*q.epsMul+q.slack8 < low8 {
			continue
		}
		sc := dense.DotF32(q.q32, mir.docs.Row(i))
		ids[p] = ids[j]
		s32[p] = sc
		p++
		s.offer(Item{Doc: i, Score: float64(sc) - mir.eps[i] - q.slack32})
	}
	return p
}

// rescoreGathered rescans the m gathered candidates, rescoring in
// float64 every row whose certified upper bound clears the threshold —
// the same bracket test as rescoreSpan, over the gathered subset.
//
//lsilint:noalloc
func (e *Engine) rescoreGathered(s *selector, ids []int32, s32 []float32, qn []float64, slack, low float64, m int) int {
	cands := 0
	for j := 0; j < m; j++ {
		i := int(ids[j])
		if float64(s32[j])+e.mir.eps[i]+slack >= low {
			s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
			cands++
		}
	}
	return cands
}

// TopKProbe is TopK with an explicit cluster-probe budget: at most
// nprobe IVF cells are scanned (0 = unlimited = exact), letting one
// engine serve both exact and approximate traffic. Without an index (or
// below the screening cutoff) it degrades to the exact path regardless
// of nprobe. The returned stats report what the scan did.
func (e *Engine) TopKProbe(q []float64, k, nprobe int) ([]Item, ScreenStats) {
	return e.TopKProbeSkip(q, k, nprobe, nil)
}

// TopKProbeSkip is TopKProbe with the rows in skip excluded — the
// tombstone-aware form of the explicit-probe entry point.
func (e *Engine) TopKProbeSkip(q []float64, k, nprobe int, skip Skip) ([]Item, ScreenStats) {
	if len(q) != e.docs.Cols {
		panic(fmt.Sprintf("rank: query dim %d want %d", len(q), e.docs.Cols))
	}
	n := e.docs.Rows
	if live := n - skip.CountUpTo(n); k > live {
		k = live
	}
	if k <= 0 {
		return []Item{}, ScreenStats{}
	}
	qn := normalizeCopy(q)
	if e.ivf != nil && e.screenable(k) {
		return e.topKIVF(qn, k, nprobe, skip)
	}
	if e.screenable(k) {
		if e.mir.q8 != nil {
			return e.topKScreened8(qn, k, skip)
		}
		return e.topKScreened(qn, k, skip)
	}
	return e.topKExact(qn, k, skip), ScreenStats{}
}

// topKBatchIVF serves a query batch through the cluster-pruned path:
// pruning is inherently per-query, so instead of one gemm over all rows
// the batch fans queries across workers, each running the same scan a
// single TopK would — results stay byte-identical to per-query calls.
func (e *Engine) topKBatchIVF(out [][]Item, stats []ScreenStats, queries *dense.Matrix, k, nprobe int, skip Skip) {
	nq := queries.Rows
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			qn := normalizeCopy(queries.Row(i))
			out[i], stats[i] = e.topKIVF(qn, k, nprobe, skip)
		}
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > nq {
		nw = nq
	}
	if nw < 2 {
		run(0, nq)
		return
	}
	var wg sync.WaitGroup
	chunk := (nq + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > nq {
			hi = nq
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
