package rank

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
)

// scoreParallelCutoff is the doc-count × dim work size above which score
// scans fan out across goroutines; one dot product is ~2·dim flops, so
// small collections stay serial.
const scoreParallelCutoff = 1 << 15

// Engine scores queries against a unit-normalized copy of a document
// matrix. Rows are normalized once at construction, so a query cosine is
// a single dot product against each row. Alongside the float64 cache the
// engine keeps a float32 screening mirror (same values rounded to half
// the bytes, plus a per-row quantization residual) that TopK/TopKBatch
// scan first, rescoring only provable candidates in float64 — results
// stay byte-identical to the pure float64 path while the first pass
// moves half the memory traffic (see screen.go). Engines are immutable
// from a reader's point of view: Extend returns a new Engine, which is
// what lets concurrent readers keep using a snapshot while a writer
// swaps in an extended one.
//
//lsilint:immutable
type Engine struct {
	docs *dense.Matrix // n×dim; rows unit-normalized (zero rows stay zero)
	// mir is the float32 screening mirror; nil on engines built with
	// NewEngineExact, which serve every query through the float64 path.
	mir *mirror
	// claimed tracks, for the backing allocation under docs.Data, how many
	// elements have been handed out to some Engine in the sharing chain.
	// Extend appends new rows into the allocation's spare capacity only
	// after winning a compare-and-swap from this engine's own length — so
	// exactly one successor per chain link reuses the tail, and a second
	// Extend of the same engine (or of an ancestor) falls back to copying.
	// The mirror's arrays are allocated with matching capacities and
	// written in lockstep, so the same CAS guards their tails too.
	claimed *atomic.Int64
	// ivf is the optional cluster index over a row prefix (see ivf.go);
	// nil engines scan every mirror row. It propagates through Extend —
	// the prefix it describes is append-only — and rows past ivf.Rows()
	// form the always-scanned unclustered tail.
	ivf *IVFIndex
}

// newEngineFor wraps an already-normalized matrix whose backing slice is
// exclusively owned by the new engine, building the screening mirror
// (and, when withInt8, the int8 coarse tier) unless the engine is
// exact-only.
func newEngineFor(docs *dense.Matrix, withMirror, withInt8 bool) *Engine {
	claimed := new(atomic.Int64)
	claimed.Store(int64(len(docs.Data)))
	e := &Engine{docs: docs, claimed: claimed}
	if withMirror {
		e.mir = buildMirror(docs, withInt8)
	}
	return e
}

// NewEngine builds the normalized cache — with its float32 screening
// mirror and int8 coarse tier — from an n×dim matrix of document
// vectors (a copy; the input is not retained or mutated).
func NewEngine(vectors *dense.Matrix) *Engine {
	return newEngine(vectors, true, true)
}

// NewEngineF32 is NewEngine without the int8 coarse tier: the two-stage
// float32-then-float64 path of PR 5. It exists for the memory/throughput
// comparison benchmarks and as a fallback reference; production engines
// carry the full three-tier stack.
func NewEngineF32(vectors *dense.Matrix) *Engine {
	return newEngine(vectors, true, false)
}

// NewEngineExact is NewEngine without any screening tier: every query
// runs the float64 path directly. It trades the multi-stage speedup for
// less memory — the opt-out behind the server's screening flag, and the
// reference the parity tests pin the screened paths against.
func NewEngineExact(vectors *dense.Matrix) *Engine {
	return newEngine(vectors, false, false)
}

func newEngine(vectors *dense.Matrix, withMirror, withInt8 bool) *Engine {
	docs := vectors.Clone()
	for i := 0; i < docs.Rows; i++ {
		dense.Normalize(docs.Row(i))
	}
	return newEngineFor(docs, withMirror, withInt8)
}

// Screening reports whether this engine carries a float32 screening
// mirror (it may still serve small collections through the exact path).
func (e *Engine) Screening() bool { return e.mir != nil }

// Int8Screening reports whether this engine carries the int8 coarse
// tier in front of the float32 mirror. It can be false on a screening
// engine when the row width exceeds dense.MaxI8Dim (the integer dot
// could overflow) or the engine was built with NewEngineF32.
func (e *Engine) Int8Screening() bool { return e.mir != nil && e.mir.q8 != nil }

// Extend returns a new Engine covering the old documents plus the given
// newly-appended rows — the incremental path for folding-in, which only
// ever appends document vectors.
//
// When the backing allocation has spare capacity and no other engine in
// the sharing chain has claimed it, the new rows are written into that
// tail and the returned Engine shares the prefix storage — an O(new rows)
// append instead of an O(all rows) copy, which is what keeps per-batch
// snapshot publication cheap as a collection grows. The screening mirror
// extends the same way: its arrays carry matching spare capacity, and the
// claim CAS covers their tails as well, so mirror rows stay bit-equal to
// the float32 conversion of the float64 rows along every chain. Existing
// readers are unaffected: they only ever touch rows below their own
// length, and the tail is written before the new Engine is published
// (callers hand the result to readers through a synchronized publish such
// as an atomic snapshot pointer or a mutex, which orders the writes).
func (e *Engine) Extend(more *dense.Matrix) *Engine {
	if more.Cols != e.docs.Cols {
		panic(fmt.Sprintf("rank: Extend dim %d want %d", more.Cols, e.docs.Cols))
	}
	norm := more.Clone()
	for i := 0; i < norm.Rows; i++ {
		dense.Normalize(norm.Row(i))
	}
	oldLen := len(e.docs.Data)
	need := oldLen + len(norm.Data)
	if e.claimed != nil && cap(e.docs.Data) >= need &&
		e.claimed.CompareAndSwap(int64(oldLen), int64(need)) {
		data := e.docs.Data[:need]
		copy(data[oldLen:], norm.Data)
		docs := &dense.Matrix{Rows: e.docs.Rows + norm.Rows, Cols: e.docs.Cols, Data: data}
		next := &Engine{docs: docs, claimed: e.claimed, ivf: e.ivf}
		if e.mir != nil {
			next.mir = e.mir.extendShared(docs, e.docs.Rows)
		}
		return next
	}
	// Copy path: a fresh allocation with headroom so subsequent extends of
	// the chain amortize to O(new rows).
	capacity := 2 * oldLen
	if capacity < need {
		capacity = need
	}
	data := make([]float64, need, capacity)
	copy(data, e.docs.Data)
	copy(data[oldLen:], norm.Data)
	ne := newEngineFor(&dense.Matrix{Rows: e.docs.Rows + norm.Rows, Cols: e.docs.Cols, Data: data},
		e.mir != nil, e.mir != nil && e.mir.q8 != nil)
	// The cluster index describes a row prefix whose values are identical
	// in the copy, so it stays valid across the copy path too.
	ne.ivf = e.ivf
	return ne
}

// NumDocs returns how many document rows the engine covers.
func (e *Engine) NumDocs() int { return e.docs.Rows }

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.docs.Cols }

// normalizeCopy returns q scaled to unit norm as a fresh slice (zero
// vectors stay zero, matching the cosine convention that a zero operand
// scores 0 everywhere).
func normalizeCopy(q []float64) []float64 {
	qn := append([]float64(nil), q...)
	dense.Normalize(qn)
	return qn
}

// Scores returns the cosine of q against every document: one dot product
// per row against the normalized cache. Every score is materialized, so
// there is nothing for screening to skip — this is always the float64
// path.
func (e *Engine) Scores(q []float64) []float64 {
	if len(q) != e.docs.Cols {
		panic(fmt.Sprintf("rank: query dim %d want %d", len(q), e.docs.Cols))
	}
	out := make([]float64, e.docs.Rows)
	qn := normalizeCopy(q)
	e.scoreRange(out, qn)
	return out
}

// scoreSpan writes the cosine of qn against document rows [lo, hi) into
// out — the serial kernel every scoring goroutine runs, so it must not
// allocate per call.
//
//lsilint:noalloc
func (e *Engine) scoreSpan(out, qn []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = dense.Dot(qn, e.docs.Row(i))
	}
}

// offerSpan scores rows [lo, hi) and feeds them through the bounded
// selector — the fused score+select kernel behind exact TopK shards.
// Skipped (tombstoned) rows are never scored or offered; the nil-skip
// branch is hoisted so the delete-free path is unchanged.
//
//lsilint:noalloc
func (e *Engine) offerSpan(s *selector, qn []float64, lo, hi int, skip Skip) {
	if skip == nil {
		for i := lo; i < hi; i++ {
			s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
		}
		return
	}
	for i := lo; i < hi; i++ {
		if skip.Has(i) {
			continue
		}
		s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
	}
}

func (e *Engine) scoreRange(out []float64, qn []float64) {
	n := e.docs.Rows
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		e.scoreSpan(out, qn, 0, n)
		return
	}
	if nw > n {
		nw = n
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.scoreSpan(out, qn, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// TopK returns the k best documents for q in ranking order, screening
// through the float32 mirror when profitable and rescoring candidates in
// float64 — byte-identical to the exact path either way.
func (e *Engine) TopK(q []float64, k int) []Item {
	items, _ := e.TopKWithStats(q, k)
	return items
}

// TopKWithStats is TopK plus a report of what the two-stage path did —
// whether screening ran and how many rows were rescored exactly. The
// items are identical to TopK's.
func (e *Engine) TopKWithStats(q []float64, k int) ([]Item, ScreenStats) {
	return e.TopKSkipWithStats(q, k, nil)
}

// TopKSkip is TopK with the rows in skip excluded — the tombstone-aware
// entry point of the serving tier. Skipped rows behave as if they were
// never inserted: they are not scored, not offered, and cannot seed a
// certified screening threshold, so the result is byte-identical (after
// index mapping) to an engine built without those rows. A nil skip is
// exactly TopK.
func (e *Engine) TopKSkip(q []float64, k int, skip Skip) []Item {
	items, _ := e.TopKSkipWithStats(q, k, skip)
	return items
}

// TopKSkipWithStats is TopKSkip plus the scan report.
func (e *Engine) TopKSkipWithStats(q []float64, k int, skip Skip) ([]Item, ScreenStats) {
	if len(q) != e.docs.Cols {
		panic(fmt.Sprintf("rank: query dim %d want %d", len(q), e.docs.Cols))
	}
	n := e.docs.Rows
	if live := n - skip.CountUpTo(n); k > live {
		k = live
	}
	if k <= 0 {
		return []Item{}, ScreenStats{}
	}
	qn := normalizeCopy(q)
	if e.ivf != nil && e.screenable(k) {
		return e.topKIVF(qn, k, e.ivf.nprobe, skip)
	}
	if e.screenable(k) {
		if e.mir.q8 != nil {
			return e.topKScreened8(qn, k, skip)
		}
		return e.topKScreened(qn, k, skip)
	}
	return e.topKExact(qn, k, skip), ScreenStats{}
}

// topKExact is the pure float64 path: scoring and selection fused per
// worker — each shard scores its rows into a bounded heap, and the shard
// survivors merge at the barrier; the full score vector is never
// materialized.
func (e *Engine) topKExact(qn []float64, k int, skip Skip) []Item {
	n := e.docs.Rows
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		s := newSelector(k)
		e.offerSpan(s, qn, 0, n, skip)
		return s.finish()
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			e.offerSpan(s, qn, lo, hi, skip)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeSelectors(sels, k)
}

// batchBlock bounds how many queries are scored per gemm so the score
// block stays a few MB even against very large collections.
const batchBlock = 32

// TopKBatch ranks every row of queries (q×dim) against the documents,
// scoring each block of queries as one gemm. When the engine screens, the
// gemm is the float32 Q32·M32ᵀ against the mirror and each query row then
// runs the certified rescore; otherwise the float64 Q·D̂ᵀ feeds bounded
// selection directly. Per-element summation order of every float64 score
// matches the single-query dot products, so results are byte-identical to
// calling TopK per query — screened or not.
func (e *Engine) TopKBatch(queries *dense.Matrix, k int) [][]Item {
	out, _ := e.TopKBatchWithStats(queries, k)
	return out
}

// TopKBatchWithStats is TopKBatch plus one ScreenStats per query row,
// reporting what each query's scan did. The items are identical to
// TopKBatch's.
func (e *Engine) TopKBatchWithStats(queries *dense.Matrix, k int) ([][]Item, []ScreenStats) {
	return e.TopKBatchSkipWithStats(queries, k, nil)
}

// TopKBatchSkipWithStats is TopKBatchWithStats with the rows in skip
// excluded from every query of the batch — per-row results are identical
// to calling TopKSkip per query.
func (e *Engine) TopKBatchSkipWithStats(queries *dense.Matrix, k int, skip Skip) ([][]Item, []ScreenStats) {
	if queries.Cols != e.docs.Cols {
		panic(fmt.Sprintf("rank: batch query dim %d want %d", queries.Cols, e.docs.Cols))
	}
	out := make([][]Item, queries.Rows)
	stats := make([]ScreenStats, queries.Rows)
	if queries.Rows == 0 {
		return out, stats
	}
	live := e.docs.Rows - skip.CountUpTo(e.docs.Rows)
	if kk := minInt(k, live); kk > 0 && e.screenable(kk) {
		if e.ivf != nil {
			e.topKBatchIVF(out, stats, queries, kk, e.ivf.nprobe, skip)
		} else if e.mir.q8 != nil {
			e.topKBatchScreened8(out, stats, queries, kk, skip)
		} else {
			e.topKBatchScreened(out, stats, queries, kk, skip)
		}
		return out, stats
	}
	scores := dense.New(minInt(batchBlock, queries.Rows), e.docs.Rows)
	for b0 := 0; b0 < queries.Rows; b0 += batchBlock {
		b1 := b0 + batchBlock
		if b1 > queries.Rows {
			b1 = queries.Rows
		}
		qn := queries.Slice(b0, b1, 0, queries.Cols)
		for r := 0; r < qn.Rows; r++ {
			dense.Normalize(qn.Row(r))
		}
		block := scores
		if qn.Rows != scores.Rows {
			// Final ragged block: a row-prefix view of the existing buffer —
			// same backing array, no fresh allocation.
			block = &dense.Matrix{Rows: qn.Rows, Cols: scores.Cols, Data: scores.Data[:qn.Rows*scores.Cols]}
		}
		dense.MulBTInto(block, qn, e.docs)
		for r := 0; r < qn.Rows; r++ {
			out[b0+r] = TopKSkip(block.Row(r), nil, k, skip)
		}
	}
	return out, stats
}

// topKBatchScreened fills out with the two-stage batch path: one float32
// gemm per query block against the mirror, then the per-row certified
// rescore. The gemm still covers every row (skipped rows are pruned at
// selection, not scoring — a gemm gather would cost more than it saves);
// lbThreshold and rescorePass honor the skip set, so tombstoned rows can
// neither seed the threshold nor surface. Callers guarantee
// screenable(k) and 0 < k ≤ live rows.
func (e *Engine) topKBatchScreened(out [][]Item, stats []ScreenStats, queries *dense.Matrix, k int, skip Skip) {
	blockRows := minInt(batchBlock, queries.Rows)
	scores := dense.NewF32(blockRows, e.docs.Rows)
	q32s := dense.NewF32(blockRows, queries.Cols)
	for b0 := 0; b0 < queries.Rows; b0 += batchBlock {
		b1 := b0 + batchBlock
		if b1 > queries.Rows {
			b1 = queries.Rows
		}
		qn := queries.Slice(b0, b1, 0, queries.Cols)
		block, q32blk := scores, q32s
		if qn.Rows != scores.Rows {
			// Final ragged block: row-prefix views of the existing buffers.
			block = &dense.MatrixF32{Rows: qn.Rows, Cols: scores.Cols, Data: scores.Data[:qn.Rows*scores.Cols]}
			q32blk = &dense.MatrixF32{Rows: qn.Rows, Cols: q32s.Cols, Data: q32s.Data[:qn.Rows*q32s.Cols]}
		}
		for r := 0; r < qn.Rows; r++ {
			dense.Normalize(qn.Row(r))
			dense.ConvertF32(q32blk.Row(r), qn.Row(r))
		}
		dense.MulBTF32Into(block, q32blk, e.mir.docs)
		for r := 0; r < qn.Rows; r++ {
			qnr := qn.Row(r)
			slack := e.screenSlack(qnr, q32blk.Row(r))
			low := e.lbThreshold(block.Row(r), slack, k, skip)
			var cands int
			out[b0+r], cands = e.rescorePass(block.Row(r), qnr, slack, k, low, skip)
			stats[b0+r] = ScreenStats{Screened: true, Candidates: cands,
				ScannedRows: e.docs.Rows}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
