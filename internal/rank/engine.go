package rank

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
)

// scoreParallelCutoff is the doc-count × dim work size above which score
// scans fan out across goroutines; one dot product is ~2·dim flops, so
// small collections stay serial.
const scoreParallelCutoff = 1 << 15

// Engine scores queries against a unit-normalized copy of a document
// matrix. Rows are normalized once at construction, so a query cosine is
// a single dot product against each row. Engines are immutable from a
// reader's point of view: Extend returns a new Engine, which is what lets
// concurrent readers keep using a snapshot while a writer swaps in an
// extended one.
type Engine struct {
	docs *dense.Matrix // n×dim; rows unit-normalized (zero rows stay zero)
	// claimed tracks, for the backing allocation under docs.Data, how many
	// elements have been handed out to some Engine in the sharing chain.
	// Extend appends new rows into the allocation's spare capacity only
	// after winning a compare-and-swap from this engine's own length — so
	// exactly one successor per chain link reuses the tail, and a second
	// Extend of the same engine (or of an ancestor) falls back to copying.
	claimed *atomic.Int64
}

// newEngineFor wraps an already-normalized matrix whose backing slice is
// exclusively owned by the new engine.
func newEngineFor(docs *dense.Matrix) *Engine {
	claimed := new(atomic.Int64)
	claimed.Store(int64(len(docs.Data)))
	return &Engine{docs: docs, claimed: claimed}
}

// NewEngine builds the normalized cache from an n×dim matrix of document
// vectors (a copy; the input is not retained or mutated).
func NewEngine(vectors *dense.Matrix) *Engine {
	docs := vectors.Clone()
	for i := 0; i < docs.Rows; i++ {
		dense.Normalize(docs.Row(i))
	}
	return newEngineFor(docs)
}

// Extend returns a new Engine covering the old documents plus the given
// newly-appended rows — the incremental path for folding-in, which only
// ever appends document vectors.
//
// When the backing allocation has spare capacity and no other engine in
// the sharing chain has claimed it, the new rows are written into that
// tail and the returned Engine shares the prefix storage — an O(new rows)
// append instead of an O(all rows) copy, which is what keeps per-batch
// snapshot publication cheap as a collection grows. Existing readers are
// unaffected: they only ever touch rows below their own length, and the
// tail is written before the new Engine is published (callers hand the
// result to readers through a synchronized publish such as an atomic
// snapshot pointer or a mutex, which orders the writes).
func (e *Engine) Extend(more *dense.Matrix) *Engine {
	if more.Cols != e.docs.Cols {
		panic(fmt.Sprintf("rank: Extend dim %d want %d", more.Cols, e.docs.Cols))
	}
	norm := more.Clone()
	for i := 0; i < norm.Rows; i++ {
		dense.Normalize(norm.Row(i))
	}
	oldLen := len(e.docs.Data)
	need := oldLen + len(norm.Data)
	if e.claimed != nil && cap(e.docs.Data) >= need &&
		e.claimed.CompareAndSwap(int64(oldLen), int64(need)) {
		data := e.docs.Data[:need]
		copy(data[oldLen:], norm.Data)
		return &Engine{
			docs:    &dense.Matrix{Rows: e.docs.Rows + norm.Rows, Cols: e.docs.Cols, Data: data},
			claimed: e.claimed,
		}
	}
	// Copy path: a fresh allocation with headroom so subsequent extends of
	// the chain amortize to O(new rows).
	capacity := 2 * oldLen
	if capacity < need {
		capacity = need
	}
	data := make([]float64, need, capacity)
	copy(data, e.docs.Data)
	copy(data[oldLen:], norm.Data)
	return newEngineFor(&dense.Matrix{Rows: e.docs.Rows + norm.Rows, Cols: e.docs.Cols, Data: data})
}

// NumDocs returns how many document rows the engine covers.
func (e *Engine) NumDocs() int { return e.docs.Rows }

// Dim returns the vector dimensionality.
func (e *Engine) Dim() int { return e.docs.Cols }

// normalizeCopy returns q scaled to unit norm as a fresh slice (zero
// vectors stay zero, matching the cosine convention that a zero operand
// scores 0 everywhere).
func normalizeCopy(q []float64) []float64 {
	qn := append([]float64(nil), q...)
	dense.Normalize(qn)
	return qn
}

// Scores returns the cosine of q against every document: one dot product
// per row against the normalized cache.
func (e *Engine) Scores(q []float64) []float64 {
	if len(q) != e.docs.Cols {
		panic(fmt.Sprintf("rank: query dim %d want %d", len(q), e.docs.Cols))
	}
	out := make([]float64, e.docs.Rows)
	qn := normalizeCopy(q)
	e.scoreRange(out, qn)
	return out
}

// scoreSpan writes the cosine of qn against document rows [lo, hi) into
// out — the serial kernel every scoring goroutine runs, so it must not
// allocate per call.
//
//lsilint:noalloc
func (e *Engine) scoreSpan(out, qn []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = dense.Dot(qn, e.docs.Row(i))
	}
}

// offerSpan scores rows [lo, hi) and feeds them through the bounded
// selector — the fused score+select kernel behind TopK shards.
//
//lsilint:noalloc
func (e *Engine) offerSpan(s *selector, qn []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.offer(Item{Doc: i, Score: dense.Dot(qn, e.docs.Row(i))})
	}
}

func (e *Engine) scoreRange(out []float64, qn []float64) {
	n := e.docs.Rows
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		e.scoreSpan(out, qn, 0, n)
		return
	}
	if nw > n {
		nw = n
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.scoreSpan(out, qn, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// TopK returns the k best documents for q in ranking order. Scoring and
// selection are fused per worker: each shard scores its rows into a
// bounded heap, and the shard survivors merge at the barrier — the full
// score vector is never materialized.
func (e *Engine) TopK(q []float64, k int) []Item {
	if len(q) != e.docs.Cols {
		panic(fmt.Sprintf("rank: query dim %d want %d", len(q), e.docs.Cols))
	}
	n := e.docs.Rows
	if k > n {
		k = n
	}
	if k <= 0 {
		return []Item{}
	}
	qn := normalizeCopy(q)
	nw := runtime.GOMAXPROCS(0)
	if n*e.docs.Cols < scoreParallelCutoff || nw < 2 || n < 2 {
		s := newSelector(k)
		e.offerSpan(s, qn, 0, n)
		return s.finish()
	}
	if nw > n {
		nw = n
	}
	sels := make([]*selector, nw)
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := newSelector(k)
			e.offerSpan(s, qn, lo, hi)
			sels[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeSelectors(sels, k)
}

// batchBlock bounds how many queries are scored per gemm so the score
// block stays a few MB even against very large collections.
const batchBlock = 32

// TopKBatch ranks every row of queries (q×dim) against the documents,
// scoring each block of queries as one gemm Q_norm·D_normᵀ via the tiled
// parallel dense.MulBT. Per-element summation order matches the
// single-query dot products, so results are byte-identical to calling
// TopK per query.
func (e *Engine) TopKBatch(queries *dense.Matrix, k int) [][]Item {
	if queries.Cols != e.docs.Cols {
		panic(fmt.Sprintf("rank: batch query dim %d want %d", queries.Cols, e.docs.Cols))
	}
	out := make([][]Item, queries.Rows)
	if queries.Rows == 0 {
		return out
	}
	scores := dense.New(minInt(batchBlock, queries.Rows), e.docs.Rows)
	for b0 := 0; b0 < queries.Rows; b0 += batchBlock {
		b1 := b0 + batchBlock
		if b1 > queries.Rows {
			b1 = queries.Rows
		}
		qn := queries.Slice(b0, b1, 0, queries.Cols)
		for r := 0; r < qn.Rows; r++ {
			dense.Normalize(qn.Row(r))
		}
		block := scores
		if qn.Rows != scores.Rows {
			block = dense.New(qn.Rows, e.docs.Rows)
		}
		dense.MulBTInto(block, qn, e.docs)
		for r := 0; r < qn.Rows; r++ {
			out[b0+r] = TopK(block.Row(r), nil, k)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
