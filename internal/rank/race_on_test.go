//go:build race

package rank

const raceEnabled = true
