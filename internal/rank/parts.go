package rank

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/dense"
)

// Parts is the serialization seam between a rank.Engine and the
// snapshot container: every derived array the engine computed at build
// time, exposed as flat slices that encode to (and attach from)
// snapfile sections without copying.
//
// The float64 document cache is deliberately absent. It is rebuilt at
// restore time by unit-normalizing the model's V rows — the exact
// operation newEngine performed originally, so the reconstruction is
// bit-identical — because at 8 bytes/coordinate it is the one array
// cheaper to recompute than to page in. The mirror (4 bytes/coord),
// the int8 tier (1 byte/coord), and the residual arrays are the
// expensive artifacts; those round trip as raw bytes.
//
// Restored slices may be read-only mmap views. That is safe by
// construction: every slice here is only ever written during buildMirror
// / fillRows / BuildIVF, and restored engines skip all three. Extend on
// a restored engine always takes its copy path because the views carry
// zero spare capacity (cap == len), so the capacity-claiming CAS cannot
// hand out a tail that lives in a PROT_READ mapping.
type Parts struct {
	Rows, Cols int

	// Float32 screening tier; Mirror is nil on exact-only engines.
	Mirror []float32
	Eps    []float64
	MaxEps float64

	// Int8 coarse tier; Q8 is nil when the engine carries no int8 tier.
	Q8      []int8
	Scale   []float64
	Eps8    []float64
	MaxEps8 float64

	// Optional IVF cluster index; nil when the engine scans flat.
	IVF *IVFParts
}

// IVFParts flattens an IVFIndex: the ragged members lists become one
// []int32 plus per-cell counts, so the whole index is three numeric
// sections and one small meta record.
type IVFParts struct {
	Rows, Dim, NProbe int
	Cents             []float64 // clusters×dim, row-major
	Radius            []float64 // one per cluster
	MemberCounts      []int32   // one per cluster; sums to Rows
	Members           []int32   // flattened cell membership, cell-major
}

// Parts extracts the engine's derived arrays as views (no copies). The
// engine must not be Extended while the caller is still encoding them;
// in the serving pipeline this holds because snapshots are taken from a
// quiesced engine.
func (e *Engine) Parts() *Parts {
	p := &Parts{Rows: e.docs.Rows, Cols: e.docs.Cols}
	if e.mir != nil {
		p.Mirror = e.mir.docs.Data
		p.Eps = e.mir.eps
		p.MaxEps = e.mir.maxEps
		if e.mir.q8 != nil {
			p.Q8 = e.mir.q8.Data
			p.Scale = e.mir.scale
			p.Eps8 = e.mir.eps8
			p.MaxEps8 = e.mir.maxEps8
		}
	}
	if e.ivf != nil {
		p.IVF = e.ivf.Parts()
	}
	return p
}

// Parts flattens the index for serialization; the returned slices view
// the index's own storage except Members/MemberCounts, which are
// re-packed (the in-memory form is ragged).
func (ix *IVFIndex) Parts() *IVFParts {
	p := &IVFParts{
		Rows:         ix.rows,
		Dim:          ix.dim,
		NProbe:       ix.nprobe,
		Cents:        ix.cents.Data,
		Radius:       ix.radius,
		MemberCounts: make([]int32, len(ix.members)),
	}
	total := 0
	for c, ms := range ix.members {
		p.MemberCounts[c] = int32(len(ms))
		total += len(ms)
	}
	p.Members = make([]int32, 0, total)
	for _, ms := range ix.members {
		p.Members = append(p.Members, ms...)
	}
	return p
}

// EngineFromParts reassembles an engine from restored sections plus the
// freshly renormalized float64 document matrix. docs ownership
// transfers to the engine (it is not cloned — the caller just built it
// for this purpose); the Parts slices may be read-only views.
//
// Validation is structural and O(rows + clusters·dim), never
// O(rows·cols) numeric work — re-deriving the quantized tiers would
// cost the SVD-free startup the snapshot exists to provide. Payload
// integrity is the snapshot container's job (per-section CRCs).
func EngineFromParts(docs *dense.Matrix, p *Parts) (*Engine, error) {
	if docs.Rows != p.Rows || docs.Cols != p.Cols {
		return nil, fmt.Errorf("rank: parts are %d×%d but docs are %d×%d",
			p.Rows, p.Cols, docs.Rows, docs.Cols)
	}
	n := p.Rows * p.Cols
	claimed := new(atomic.Int64)
	claimed.Store(int64(len(docs.Data)))
	e := &Engine{docs: docs, claimed: claimed}

	if p.Mirror != nil {
		if len(p.Mirror) != n || len(p.Eps) != p.Rows {
			return nil, fmt.Errorf("rank: mirror sections sized %d/%d, want %d/%d",
				len(p.Mirror), len(p.Eps), n, p.Rows)
		}
		if p.MaxEps < 0 || math.IsNaN(p.MaxEps) || math.IsInf(p.MaxEps, 0) {
			return nil, fmt.Errorf("rank: corrupt mirror maxEps %v", p.MaxEps)
		}
		// The mirror is built in one literal — it is an //lsilint:immutable
		// type, and this is its restore-side constructor.
		var q8 *dense.MatrixI8
		var scale, eps8 []float64
		if p.Q8 != nil {
			if p.Cols > dense.MaxI8Dim {
				return nil, fmt.Errorf("rank: int8 sections present but cols %d exceed %d",
					p.Cols, dense.MaxI8Dim)
			}
			if len(p.Q8) != n || len(p.Scale) != p.Rows || len(p.Eps8) != p.Rows {
				return nil, fmt.Errorf("rank: int8 sections sized %d/%d/%d, want %d/%d/%d",
					len(p.Q8), len(p.Scale), len(p.Eps8), n, p.Rows, p.Rows)
			}
			if p.MaxEps8 < 0 || math.IsNaN(p.MaxEps8) || math.IsInf(p.MaxEps8, 0) {
				return nil, fmt.Errorf("rank: corrupt int8 maxEps8 %v", p.MaxEps8)
			}
			q8 = &dense.MatrixI8{Rows: p.Rows, Cols: p.Cols, Data: p.Q8}
			scale, eps8 = p.Scale, p.Eps8
		}
		e.mir = &mirror{
			docs:    &dense.MatrixF32{Rows: p.Rows, Cols: p.Cols, Data: p.Mirror},
			eps:     p.Eps,
			maxEps:  p.MaxEps,
			q8:      q8,
			scale:   scale,
			eps8:    eps8,
			maxEps8: p.MaxEps8,
		}
	} else if p.Q8 != nil {
		return nil, fmt.Errorf("rank: int8 tier requires the float32 mirror")
	}

	if p.IVF != nil {
		ix, err := IVFFromParts(p.IVF)
		if err != nil {
			return nil, err
		}
		if ix.rows > p.Rows {
			return nil, fmt.Errorf("rank: IVF covers %d rows but engine has %d", ix.rows, p.Rows)
		}
		if ix.dim != p.Cols {
			return nil, fmt.Errorf("rank: IVF dim %d but engine cols %d", ix.dim, p.Cols)
		}
		e.ivf = ix
	}
	return e, nil
}

// IVFFromParts rebuilds the ragged index from its flattened form,
// verifying the membership lists are an exact partition of [0, Rows):
// a snapshot that dropped or duplicated a row would silently exclude
// documents from (or double-count them in) every certified cell bound.
func IVFFromParts(p *IVFParts) (*IVFIndex, error) {
	clusters := len(p.MemberCounts)
	if p.Rows < 0 || p.Dim <= 0 || p.NProbe < 0 {
		return nil, fmt.Errorf("rank: corrupt IVF header rows=%d dim=%d nprobe=%d",
			p.Rows, p.Dim, p.NProbe)
	}
	if len(p.Cents) != clusters*p.Dim || len(p.Radius) != clusters {
		return nil, fmt.Errorf("rank: IVF sections sized %d/%d, want %d/%d",
			len(p.Cents), len(p.Radius), clusters*p.Dim, clusters)
	}
	for c, r := range p.Radius {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("rank: corrupt IVF radius[%d] = %v", c, r)
		}
	}
	if len(p.Members) != p.Rows {
		return nil, fmt.Errorf("rank: IVF members list %d entries, want %d", len(p.Members), p.Rows)
	}
	seen := make([]bool, p.Rows)
	for _, m := range p.Members {
		if m < 0 || int(m) >= p.Rows {
			return nil, fmt.Errorf("rank: IVF member %d outside [0, %d)", m, p.Rows)
		}
		if seen[m] {
			return nil, fmt.Errorf("rank: IVF member %d appears in two cells", m)
		}
		seen[m] = true
	}
	members := make([][]int32, clusters)
	off := 0
	for c, cnt := range p.MemberCounts {
		if cnt < 0 || off+int(cnt) > len(p.Members) {
			return nil, fmt.Errorf("rank: IVF cell %d count %d overruns members list", c, cnt)
		}
		members[c] = p.Members[off : off+int(cnt) : off+int(cnt)]
		off += int(cnt)
	}
	if off != len(p.Members) {
		return nil, fmt.Errorf("rank: IVF cell counts sum to %d, want %d", off, len(p.Members))
	}
	return &IVFIndex{
		rows:    p.Rows,
		dim:     p.Dim,
		nprobe:  p.NProbe,
		cents:   &dense.Matrix{Rows: clusters, Cols: p.Dim, Data: p.Cents},
		radius:  p.Radius,
		members: members,
	}, nil
}
