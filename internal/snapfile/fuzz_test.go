package snapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func encodeOrDie(t testing.TB, sections []Section) []byte {
	t.Helper()
	blob, err := Encode(sections)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return blob
}

// TestRoundTrip pins the write/reopen contract: every section comes
// back bit-identical, in order, through both the file path (mmap where
// available) and OpenBytes, and the whole file passes VerifyAll.
func TestRoundTrip(t *testing.T) {
	sections := []Section{
		{Name: "meta", Data: []byte(`{"k":12}`)},
		{Name: "empty", Data: nil},
		{Name: "S", Data: F64Bytes([]float64{3.5, 1.25, 0.5})},
		{Name: "q8", Data: I8Bytes([]int8{-127, 0, 127, 5})},
		{Name: "mirror", Data: F32Bytes([]float32{1, -2.5, 3})},
		{Name: "members", Data: I32Bytes([]int32{7, -9, 1 << 20})},
	}
	path := filepath.Join(t.TempDir(), "snap.lsnp")
	if err := Write(path, sections); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if err := f.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if got := f.Names(); len(got) != len(sections) {
		t.Fatalf("Names() = %v", got)
	}
	for i, s := range sections {
		b, ok := f.Section(s.Name)
		if !ok {
			t.Fatalf("section %q missing", s.Name)
		}
		if !bytes.Equal(b, s.Data) {
			t.Fatalf("section %q differs after round trip", s.Name)
		}
		if f.Names()[i] != s.Name {
			t.Fatalf("section order changed: %v", f.Names())
		}
	}
	fs, err := F64(mustSection(t, f, "S"))
	if err != nil || len(fs) != 3 || fs[0] != 3.5 {
		t.Fatalf("F64 view = %v, %v", fs, err)
	}
	q8 := I8(mustSection(t, f, "q8"))
	if len(q8) != 4 || q8[0] != -127 || q8[2] != 127 {
		t.Fatalf("I8 view = %v", q8)
	}
	m32, err := F32(mustSection(t, f, "mirror"))
	if err != nil || m32[1] != -2.5 {
		t.Fatalf("F32 view = %v, %v", m32, err)
	}
	ms, err := I32(mustSection(t, f, "members"))
	if err != nil || ms[2] != 1<<20 {
		t.Fatalf("I32 view = %v, %v", ms, err)
	}
}

// seedCorpusBytes returns a realistic multi-section image shaped like a
// real model snapshot and keeps testdata/seed.lsnp (the on-disk copy of
// the same bytes, used as a committed fuzz seed) in sync with the
// current format version.
func seedCorpusBytes(t testing.TB) []byte {
	blob := encodeOrDie(t, []Section{
		{Name: "meta", Data: []byte(`{"version":1,"shards":2}`)},
		{Name: "s0/S", Data: F64Bytes([]float64{9.5, 4.25, 1.0625})},
		{Name: "s0/rank/q8", Data: I8Bytes([]int8{-127, -1, 0, 1, 127, 42})},
		{Name: "s0/rank/mirror", Data: F32Bytes([]float32{0.5, -0.25, 0.125})},
		{Name: "s0/ivf/members", Data: I32Bytes([]int32{0, 1, 2, 3})},
	})
	path := filepath.Join("testdata", "seed.lsnp")
	if disk, err := os.ReadFile(path); err != nil || !bytes.Equal(disk, blob) {
		if err := os.MkdirAll("testdata", 0o755); err == nil {
			_ = os.WriteFile(path, blob, 0o644)
		}
	}
	return blob
}

// TestSeedCorpusCurrent regenerates testdata/seed.lsnp when the format
// changes and fails if the committed seed ever stops opening cleanly.
func TestSeedCorpusCurrent(t *testing.T) {
	seedCorpusBytes(t)
	disk, err := os.ReadFile(filepath.Join("testdata", "seed.lsnp"))
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	f, err := OpenBytes(disk)
	if err != nil {
		t.Fatalf("committed seed does not open: %v", err)
	}
	if err := f.VerifyAll(); err != nil {
		t.Fatalf("committed seed does not verify: %v", err)
	}
}

func mustSection(t *testing.T, f *File, name string) []byte {
	t.Helper()
	b, ok := f.Section(name)
	if !ok {
		t.Fatalf("section %q missing", name)
	}
	return b
}

// TestWriteRejects pins writer-side validation: oversized and duplicate
// names fail before anything touches the disk.
func TestWriteRejects(t *testing.T) {
	if _, err := Encode([]Section{{Name: "", Data: nil}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Encode([]Section{{Name: "name-longer-than-sixteen", Data: nil}}); err == nil {
		t.Fatal("oversized name accepted")
	}
	if _, err := Encode([]Section{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestCorruptionDetected pins the integrity ladder: header damage and
// table damage fail at OpenBytes (the O(1) validation); payload damage
// passes OpenBytes but fails VerifySection/VerifyAll.
func TestCorruptionDetected(t *testing.T) {
	blob := encodeOrDie(t, []Section{
		{Name: "a", Data: F64Bytes([]float64{1, 2, 3})},
		{Name: "b", Data: []byte("payload")},
	})
	// Recompute the payload layout from the documented format: table
	// right after the header, then 64-byte-aligned payloads in order.
	// This doubles as a pin on the layout contract.
	offA := alignUp(headerSize + 2*entrySize)
	endA := offA + 3*8
	offB := alignUp(endA)
	endB := offB + uint64(len("payload"))
	// Truncations that remove any payload, table, or header byte must
	// never pass a full verify. (Cuts beyond the last payload byte only
	// shave trailing alignment padding and legitimately still verify.)
	for cut := 0; cut < int(endB); cut += 7 {
		f, err := OpenBytes(blob[:cut])
		if err == nil && f.VerifyAll() == nil {
			t.Fatalf("truncation to %d bytes passed VerifyAll", cut)
		}
	}
	// A flipped header byte fails the header CRC.
	h := append([]byte(nil), blob...)
	h[9] ^= 0x40
	if _, err := OpenBytes(h); err == nil {
		t.Fatal("header corruption accepted")
	}
	// A flipped table byte fails the table CRC.
	tb := append([]byte(nil), blob...)
	tb[headerSize+3] ^= 1
	if _, err := OpenBytes(tb); err == nil {
		t.Fatal("table corruption accepted")
	}
	// A flipped payload byte passes O(1) open but fails that section's
	// CRC — and only that section's.
	pb := append([]byte(nil), blob...)
	f, err := OpenBytes(pb)
	if err != nil {
		t.Fatalf("OpenBytes on intact payload copy: %v", err)
	}
	pb[offB] ^= 0x80 // first byte of section b's payload
	if err := f.VerifySection("b"); err == nil {
		t.Fatal("payload corruption passed VerifySection")
	}
	if err := f.VerifySection("a"); err != nil {
		t.Fatalf("untouched section failed verify: %v", err)
	}
	if err := f.VerifyAll(); err == nil {
		t.Fatal("payload corruption passed VerifyAll")
	}
}

// FuzzOpenSnapshot is the satellite fuzz target, following the
// FuzzReadMatrixMarket pattern: arbitrary bytes must never panic, never
// allocate table space from an unvalidated count, and anything that
// opens and fully verifies must re-encode to an image that opens with
// identical section contents (bit-exact round trip).
func FuzzOpenSnapshot(f *testing.F) {
	f.Add(encodeOrDie(f, []Section{
		{Name: "meta", Data: []byte(`{"v":1}`)},
		{Name: "S", Data: F64Bytes([]float64{2.5, 0.125})},
		{Name: "q8", Data: I8Bytes([]int8{-3, 4, 5})},
	}))
	f.Add(encodeOrDie(f, nil))
	f.Add(encodeOrDie(f, []Section{{Name: "only", Data: bytes.Repeat([]byte{0xAB}, 200)}}))
	f.Add(seedCorpusBytes(f))
	// Mutated seeds: truncation and a flipped payload byte.
	whole := encodeOrDie(f, []Section{{Name: "x", Data: []byte("0123456789")}})
	f.Add(whole[:len(whole)-3])
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := OpenBytes(data)
		if err != nil {
			return
		}
		if err := fl.VerifyAll(); err != nil {
			return
		}
		// Fully verified: rebuild the section list and round trip.
		var sections []Section
		for _, name := range fl.Names() {
			b, ok := fl.Section(name)
			if !ok {
				t.Fatalf("listed section %q missing", name)
			}
			sections = append(sections, Section{Name: name, Data: b})
		}
		blob, err := Encode(sections)
		if err != nil {
			t.Fatalf("re-encode of verified file failed: %v", err)
		}
		fl2, err := OpenBytes(blob)
		if err != nil {
			t.Fatalf("re-open of re-encode failed: %v", err)
		}
		if err := fl2.VerifyAll(); err != nil {
			t.Fatalf("re-encode failed verify: %v", err)
		}
		for _, name := range fl.Names() {
			a, _ := fl.Section(name)
			b, ok := fl2.Section(name)
			if !ok || !bytes.Equal(a, b) {
				t.Fatalf("section %q not bit-identical after round trip", name)
			}
		}
	})
}
