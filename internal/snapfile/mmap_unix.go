//go:build unix

package snapfile

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. The mapping is PROT_READ: any write
// through a section view faults immediately instead of silently
// corrupting the snapshot — which is also why restored engines treat
// every restored array as immutable (their spare capacity is zero, so
// e.g. rank.Engine.Extend always takes its copy path). An empty file
// cannot be mapped and falls back to a plain read.
func mapFile(path string) ([]byte, func() error, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("snapfile: %s is empty", path)
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("snapfile: %s is too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (or exotic mount options):
		// degrade to an in-memory read.
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return blob, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
