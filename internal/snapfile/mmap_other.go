//go:build !unix

package snapfile

import "os"

// mapFile reads path fully into memory — the portable fallback where
// no mmap syscall is wrapped. Semantics match the mapped path except
// that cold sections cost read I/O up front.
func mapFile(path string) ([]byte, func() error, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return blob, nil, nil
}
