// Package snapfile is the memory-mappable snapshot container behind
// model persistence: a versioned header, a CRC-protected section table,
// and named 64-byte-aligned little-endian payload sections.
//
// The layout is built for O(1) opening: Open validates only the header
// and the section table (both small, both CRC'd) before handing out
// section views — payload bytes are mapped, not read, so a multi-GB
// model file costs page-table setup, not I/O, and cold rows fault in on
// demand as queries touch them. Every section carries its own CRC32 so
// callers can verify exactly the sections whose integrity matters at
// load time (small per-row arrays) while leaving bulk slabs to lazy
// paging; VerifyAll walks everything and is what the fuzz target and
// the test suite use.
//
// Alignment contract: every payload starts at a 64-byte offset within
// the file. An mmap base is page-aligned, so mapped sections are
// 64-byte aligned in memory and the typed view helpers (F64, F32, I32,
// I8) can alias the mapping without copying on little-endian hosts.
// The read-file fallback and big-endian hosts decode into fresh slices
// instead — same values, no aliasing assumptions.
package snapfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"
)

const (
	// Magic identifies a snapshot container ("LSNP").
	Magic = 0x4c534e50
	// Version is the container format version.
	Version = 1

	headerSize = 64
	entrySize  = 40 // name[16] + off u64 + size u64 + crc u32 + pad u32
	// Align is the payload alignment: every section offset is a multiple
	// of this, chosen so float64 views are always aligned and section
	// starts sit on cache-line boundaries.
	Align = 64

	// maxSections bounds the section table accepted from a header, so a
	// corrupt count cannot drive the table allocation.
	maxSections = 1 << 16
	// maxNameLen is the fixed name field width; longer names are
	// rejected at write time.
	maxNameLen = 16
)

// Section is one named payload handed to Write.
type Section struct {
	Name string
	Data []byte
}

// span locates one section inside an opened file.
type span struct {
	off, size uint64
	crc       uint32
}

// File is an opened snapshot. Section data aliases the underlying
// mapping (or the fallback read buffer) — callers must treat every
// returned slice as read-only and must not use it after Close.
type File struct {
	data     []byte
	sections map[string]span
	names    []string
	closer   func() error
}

// Write serializes the sections to path: header, section table,
// payloads in order, each payload 64-byte aligned. The write goes
// through a temp file and an atomic rename, so a crash mid-save never
// leaves a half-written snapshot under the target name.
func Write(path string, sections []Section) error {
	blob, err := Encode(sections)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Encode builds the container image in memory — the writer behind
// Write, exported for tests and fuzzing.
func Encode(sections []Section) ([]byte, error) {
	if len(sections) > maxSections {
		return nil, fmt.Errorf("snapfile: %d sections exceed limit %d", len(sections), maxSections)
	}
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > maxNameLen {
			return nil, fmt.Errorf("snapfile: section name %q must be 1..%d bytes", s.Name, maxNameLen)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("snapfile: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}
	tableOff := uint64(headerSize)
	tableLen := uint64(len(sections) * entrySize)
	off := alignUp(tableOff + tableLen)
	spans := make([]span, len(sections))
	for i, s := range sections {
		spans[i] = span{off: off, size: uint64(len(s.Data)), crc: crc32.ChecksumIEEE(s.Data)}
		off = alignUp(off + uint64(len(s.Data)))
	}
	blob := make([]byte, off)
	table := blob[tableOff : tableOff+tableLen]
	for i, s := range sections {
		e := table[i*entrySize:]
		copy(e[:maxNameLen], s.Name)
		binary.LittleEndian.PutUint64(e[16:], spans[i].off)
		binary.LittleEndian.PutUint64(e[24:], spans[i].size)
		binary.LittleEndian.PutUint32(e[32:], spans[i].crc)
		copy(blob[spans[i].off:], s.Data)
	}
	h := blob[:headerSize]
	binary.LittleEndian.PutUint32(h[0:], Magic)
	binary.LittleEndian.PutUint32(h[4:], Version)
	binary.LittleEndian.PutUint32(h[8:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(h[16:], tableOff)
	binary.LittleEndian.PutUint64(h[24:], tableLen)
	binary.LittleEndian.PutUint32(h[32:], crc32.ChecksumIEEE(table))
	binary.LittleEndian.PutUint32(h[36:], crc32.ChecksumIEEE(h[:36]))
	return blob, nil
}

// Open maps the snapshot at path read-only (falling back to a plain
// read where mmap is unavailable) and validates the header and section
// table — O(table), independent of payload size. Payload CRCs are NOT
// checked here; call VerifySection / VerifyAll for that.
func Open(path string) (*File, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := OpenBytes(data)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	f.closer = closer
	return f, nil
}

// OpenBytes validates a container image already in memory. Sections
// alias data.
func OpenBytes(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapfile: %d bytes is smaller than the header", len(data))
	}
	h := data[:headerSize]
	if got := binary.LittleEndian.Uint32(h[0:]); got != Magic {
		return nil, fmt.Errorf("snapfile: bad magic %#x", got)
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != Version {
		return nil, fmt.Errorf("snapfile: unsupported version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(h[:36]), binary.LittleEndian.Uint32(h[36:]); got != want {
		return nil, fmt.Errorf("snapfile: header CRC mismatch (%#x != %#x)", got, want)
	}
	nsect := binary.LittleEndian.Uint32(h[8:])
	if nsect > maxSections {
		return nil, fmt.Errorf("snapfile: section count %d exceeds limit %d", nsect, maxSections)
	}
	tableOff := binary.LittleEndian.Uint64(h[16:])
	tableLen := binary.LittleEndian.Uint64(h[24:])
	if tableLen != uint64(nsect)*entrySize {
		return nil, fmt.Errorf("snapfile: table length %d != %d sections", tableLen, nsect)
	}
	end := tableOff + tableLen
	if tableOff < headerSize || end < tableOff || end > uint64(len(data)) {
		return nil, fmt.Errorf("snapfile: section table [%d,%d) outside file of %d bytes", tableOff, end, len(data))
	}
	table := data[tableOff:end]
	if got, want := crc32.ChecksumIEEE(table), binary.LittleEndian.Uint32(h[32:]); got != want {
		return nil, fmt.Errorf("snapfile: section table CRC mismatch (%#x != %#x)", got, want)
	}
	f := &File{data: data, sections: make(map[string]span, nsect), names: make([]string, 0, nsect)}
	for i := uint32(0); i < nsect; i++ {
		e := table[i*entrySize:]
		name := string(trimNul(e[:maxNameLen]))
		if name == "" {
			return nil, fmt.Errorf("snapfile: empty section name at entry %d", i)
		}
		if _, dup := f.sections[name]; dup {
			return nil, fmt.Errorf("snapfile: duplicate section %q", name)
		}
		sp := span{
			off:  binary.LittleEndian.Uint64(e[16:]),
			size: binary.LittleEndian.Uint64(e[24:]),
			crc:  binary.LittleEndian.Uint32(e[32:]),
		}
		pend := sp.off + sp.size
		if sp.off%Align != 0 || pend < sp.off || pend > uint64(len(data)) {
			return nil, fmt.Errorf("snapfile: section %q spans [%d,%d) outside file of %d bytes",
				name, sp.off, pend, len(data))
		}
		f.sections[name] = sp
		f.names = append(f.names, name)
	}
	return f, nil
}

func trimNul(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

// Names lists the sections in table order.
func (f *File) Names() []string { return f.names }

// Section returns the raw bytes of a named section (aliasing the
// mapping; treat as read-only) and whether it exists.
func (f *File) Section(name string) ([]byte, bool) {
	sp, ok := f.sections[name]
	if !ok {
		return nil, false
	}
	return f.data[sp.off : sp.off+sp.size : sp.off+sp.size], true
}

// SectionOffset returns a section's payload offset within the file
// (-1 when absent) — for tools that patch or inspect containers in
// place.
func (f *File) SectionOffset(name string) int64 {
	sp, ok := f.sections[name]
	if !ok {
		return -1
	}
	return int64(sp.off)
}

// VerifySection checks one section's payload CRC — O(section size).
func (f *File) VerifySection(name string) error {
	sp, ok := f.sections[name]
	if !ok {
		return fmt.Errorf("snapfile: no section %q", name)
	}
	if got := crc32.ChecksumIEEE(f.data[sp.off : sp.off+sp.size]); got != sp.crc {
		return fmt.Errorf("snapfile: section %q CRC mismatch (%#x != %#x)", name, got, sp.crc)
	}
	return nil
}

// VerifyAll checks every section's payload CRC — O(file size); the
// offline integrity pass, not part of serving startup.
func (f *File) VerifyAll() error {
	for _, name := range f.names {
		if err := f.VerifySection(name); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the mapping. Section slices handed out earlier must
// not be used afterwards.
func (f *File) Close() error {
	f.data = nil
	f.sections = nil
	if f.closer != nil {
		c := f.closer
		f.closer = nil
		return c()
	}
	return nil
}

func alignUp(n uint64) uint64 { return (n + Align - 1) &^ (Align - 1) }

// hostLittleEndian reports whether the running machine stores multi-
// byte integers little-endian — the precondition for aliasing section
// bytes as typed slices instead of decoding them.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aliasable reports whether b can be reinterpreted in place as a slice
// of elemSize-byte little-endian elements.
func aliasable(b []byte, elemSize int) bool {
	return hostLittleEndian && len(b) > 0 &&
		uintptr(unsafe.Pointer(&b[0]))%uintptr(elemSize) == 0
}

// F64 views a section as float64s: zero-copy when the host is
// little-endian and the bytes are aligned (the mmap path), a decoded
// copy otherwise. Errors when the length is not a multiple of 8.
func F64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("snapfile: %d bytes is not a float64 payload", len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if aliasable(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), nil
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// F32 views a section as float32s (zero-copy when aligned + LE host).
func F32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("snapfile: %d bytes is not a float32 payload", len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if aliasable(b, 4) {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), nil
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// I32 views a section as int32s (zero-copy when aligned + LE host).
func I32(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("snapfile: %d bytes is not an int32 payload", len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if aliasable(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), nil
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// I8 views a section as int8s — always zero-copy (single-byte elements
// have no endianness or alignment).
func I8(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// F64Bytes encodes float64s little-endian — the writer-side dual of F64.
func F64Bytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// F32Bytes encodes float32s little-endian.
func F32Bytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(x))
	}
	return out
}

// I32Bytes encodes int32s little-endian.
func I32Bytes(xs []int32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

// I8Bytes encodes int8s (byte-for-byte).
func I8Bytes(xs []int8) []byte {
	out := make([]byte, len(xs))
	for i, x := range xs {
		out[i] = byte(x)
	}
	return out
}
