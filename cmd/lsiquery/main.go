// Command lsiquery builds an LSI index over a directory of plain-text files
// and answers queries against it — the retrieval tool a downstream user
// runs over their own documents.
//
// Usage:
//
//	lsiquery -dir ./docs -k 50 "sparse singular value decomposition"
//	lsiquery -dir ./docs            # interactive: one query per line
//
// Flags:
//
//	-dir     directory of *.txt files (required)
//	-k       number of LSI factors (default 50, clamped to the collection)
//	-scheme  weighting: raw | log-entropy (default log-entropy)
//	-top     number of documents to print (default 10)
//	-terms   also print the nearest indexed terms (automatic thesaurus)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/synonym"
	"repro/internal/text"
	"repro/internal/weight"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lsiquery: ")
	dir := flag.String("dir", "", "directory of *.txt files to index")
	k := flag.Int("k", 50, "number of LSI factors")
	schemeName := flag.String("scheme", "log-entropy", "weighting: raw | log-entropy")
	top := flag.Int("top", 10, "documents to print per query")
	showTerms := flag.Bool("terms", false, "also print nearest terms for each query word")
	savePath := flag.String("save", "", "write the built index to this file and exit")
	loadPath := flag.String("load", "", "load a previously saved index instead of -dir")
	flag.Parse()

	var scheme weight.Scheme
	switch *schemeName {
	case "raw":
		scheme = weight.Raw
	case "log-entropy":
		scheme = weight.LogEntropy
	default:
		log.Fatalf("unknown scheme %q", *schemeName)
	}

	var coll *corpus.Collection
	var model *core.Model
	var docs []corpus.Document
	switch {
	case *loadPath != "":
		ix, err := index.Load(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		coll, model, docs = ix.Coll, ix.Model, ix.Coll.Docs
		fmt.Fprintf(os.Stderr, "loaded index: %d terms, %d docs, k=%d\n",
			coll.Terms(), model.NumDocs(), model.K)
	case *dir != "":
		var err error
		docs, err = loadDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		if len(docs) == 0 {
			log.Fatalf("no .txt files under %s", *dir)
		}
		ix, err := index.Build(docs, text.ParseOptions{MinDocs: 2},
			core.Config{K: *k, Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		coll, model = ix.Coll, ix.Model
		fmt.Fprintf(os.Stderr, "indexed %d terms over %d documents (density %.3f%%), k=%d, σ1=%.3f\n",
			coll.Terms(), coll.Size(), 100*coll.TD.Density(), model.K, model.S[0])
		if *savePath != "" {
			if err := ix.Save(*savePath); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "index saved to %s\n", *savePath)
			if flag.NArg() == 0 {
				return
			}
		}
	default:
		log.Fatal("either -dir or -load is required")
	}

	answer := func(q string) {
		raw := coll.QueryVector(q)
		nz := 0
		for _, v := range raw {
			if v > 0 {
				nz++
			}
		}
		if nz == 0 {
			fmt.Println("  (no query word is in the index)")
			return
		}
		// Bounded top-k selection: only the documents to be printed are
		// ranked, not the whole collection.
		for _, r := range model.RankTop(raw, *top) {
			fmt.Printf("  %+.3f  %s\n", r.Score, docs[r.Doc].ID)
		}
		if *showTerms {
			for _, w := range strings.Fields(strings.ToLower(q)) {
				if _, ok := coll.Vocab.Index[w]; !ok {
					continue
				}
				near, err := synonym.NearestTerms(model, coll.Vocab, w, 5)
				if err == nil {
					fmt.Printf("  terms near %q: %s\n", w, strings.Join(near, ", "))
				}
			}
		}
	}

	if flag.NArg() > 0 {
		answer(strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "query> ")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q != "" {
			answer(q)
		}
		fmt.Fprint(os.Stderr, "query> ")
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// loadDir reads every .txt file directly under dir, in sorted order.
func loadDir(dir string) ([]corpus.Document, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	docs := make([]corpus.Document, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		docs = append(docs, corpus.Document{ID: name, Text: string(b)})
	}
	return docs, nil
}
