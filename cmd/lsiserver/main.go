// Command lsiserver serves an LSI index over HTTP — the paper's NETLIB
// fuzzy-search deployment shape (§5.4). It indexes a directory of .txt
// files and exposes /search, /terms, /documents and /stats.
//
// Usage:
//
//	lsiserver -dir ./docs -k 100 -addr :8080
//
// then:
//
//	curl 'localhost:8080/search?q=sparse+svd&n=5'
//	curl 'localhost:8080/terms?w=matrix'
//	curl -X POST -d '{"id":"new1","text":"..."}' localhost:8080/documents
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/text"
	"repro/internal/weight"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lsiserver: ")
	dir := flag.String("dir", "", "directory of *.txt files to index")
	k := flag.Int("k", 100, "number of LSI factors")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	entries, err := os.ReadDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var docs []corpus.Document
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(*dir, name))
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, corpus.Document{ID: name, Text: string(b)})
	}
	if len(docs) == 0 {
		log.Fatalf("no .txt files under %s", *dir)
	}

	coll := corpus.New(docs, text.ParseOptions{MinDocs: 2})
	model, err := core.BuildCollection(coll, core.Config{K: *k, Scheme: weight.LogEntropy})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(coll, model)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("indexed %d docs, %d terms, k=%d; listening on %s",
		coll.Size(), coll.Terms(), model.K, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
