// Command lsiserver serves an LSI index over HTTP — the paper's NETLIB
// fuzzy-search deployment shape (§5.4). It indexes a directory of .txt
// files and exposes /search, /search/batch, /terms, /documents, /stats
// and /metrics, served from immutable snapshots so reads never block on
// fold-ins or compactions (see docs/SERVING.md).
//
// Usage:
//
//	lsiserver -dir ./docs -k 100 -addr :8080
//
// then:
//
//	curl 'localhost:8080/search?q=sparse+svd&n=5'
//	curl 'localhost:8080/terms?w=matrix'
//	curl -X POST -d '{"id":"new1","text":"..."}' localhost:8080/documents
//	curl -X DELETE localhost:8080/docs/new1
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, the
// fold-in queue drains, and every acknowledged document is part of the
// final state before the process exits. With -save-model the drained,
// compacted state is persisted to a snapshot container; a later
//
//	lsiserver -load-model state.lsnp -addr :8080
//
// restores it without re-reading -dir or recomputing the SVD — factors
// and scoring caches attach memory-mapped, so startup time is
// independent of corpus size and cold rows page in on first touch.
//
//lsilint:file-ignore walltime — server lifecycle timeouts are wall-clock by nature
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/text"
	"repro/internal/weight"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lsiserver: ")
	dir := flag.String("dir", "", "directory of *.txt files to index")
	k := flag.Int("k", 100, "number of LSI factors")
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1,
		"engine shards behind the scatter-gather tier; results are byte-identical for every value")
	queueSize := flag.Int("queue", 256, "per-shard fold-in queue capacity (full queue => 503 + Retry-After)")
	batchTick := flag.Duration("batch-tick", 2*time.Millisecond, "fold-in batching window")
	compactAt := flag.Float64("compact-threshold", 0.05,
		"doc-orthogonality loss triggering SVD-update compaction; 0 disables")
	compactStrategy := flag.String("compact-strategy", "obrien",
		"SVD-update algorithm for compaction: obrien (exact dense inner SVD) or gk (Golub-Kahan projections, faster on large pending batches)")
	gkRank := flag.Int("gk-rank", 0,
		"Golub-Kahan projection rank for -compact-strategy=gk; 0 picks the default")
	noScreen := flag.Bool("no-screen", false,
		"disable the float32 screening mirror; every query runs the pure float64 path (identical results, more memory traffic)")
	noIVF := flag.Bool("no-ivf", false,
		"disable the cluster index over the screening mirror; queries screen every row (identical results, no cluster pruning)")
	ivfClusters := flag.Int("ivf-clusters", 0,
		"cluster-index cell count; 0 picks sqrt(docs)")
	nprobe := flag.Int("nprobe", 0,
		"approximate mode: max IVF cells scanned per query; 0 keeps queries exact (certified pruning only)")
	ivfRebuildFrac := flag.Float64("ivf-rebuild-frac", 0.25,
		"unclustered-tail fraction triggering a background cluster-index rebuild; negative disables size-triggered rebuilds")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline; 0 disables")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for draining queued fold-ins")
	loadModel := flag.String("load-model", "",
		"start from a model snapshot (.lsnp) instead of indexing -dir: no SVD rebuild, factors and scoring caches attach memory-mapped, startup cost independent of corpus size")
	saveModel := flag.String("save-model", "",
		"write a model snapshot here during graceful shutdown (after the fold-in queues drain and a final compaction)")
	verifyModel := flag.Bool("verify-model", false,
		"CRC-check every snapshot payload at -load-model time (reads the whole file; default trusts the O(1) header+table checksums plus structural validation)")
	flag.Parse()
	if *dir == "" && *loadModel == "" {
		log.Fatal("-dir or -load-model is required")
	}
	strategy, err := core.ParseUpdateStrategy(*compactStrategy)
	if err != nil {
		log.Fatal(err)
	}
	engCfg := engine.Config{
		QueueSize:          *queueSize,
		BatchTick:          *batchTick,
		CompactThreshold:   *compactAt,
		DisableScreening:   *noScreen,
		DisableIVF:         *noIVF,
		IVFClusters:        *ivfClusters,
		IVFNProbe:          *nprobe,
		IVFRebuildFraction: *ivfRebuildFrac,
		CompactionStrategy: strategy,
		GKRank:             *gkRank,
		Logf:               log.Printf,
	}
	httpOpts := server.Options{
		Shards:         *shards,
		Engine:         engCfg,
		RequestTimeout: *reqTimeout,
		Logf:           log.Printf,
	}

	var srv *server.Server
	if *loadModel != "" {
		start := time.Now()
		router, snapFile, err := shard.Restore(*loadModel, shard.Config{
			Engine:           engCfg,
			CompactThreshold: *compactAt,
			Logf:             log.Printf,
		}, *verifyModel)
		if err != nil {
			log.Fatal(err)
		}
		// The mapping backs the serving tier for the process lifetime;
		// the OS reclaims it at exit.
		_ = snapFile
		srv = server.NewFromRouter(router, httpOpts)
		st := router.Stats()
		log.Printf("restored %d docs, %d terms across %d shard(s) from %s in %s (verify=%v); listening on %s",
			st.Documents, router.Collection().Terms(), router.Shards(), *loadModel,
			time.Since(start).Round(time.Millisecond), *verifyModel, *addr)
	} else {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".txt") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		var docs []corpus.Document
		for _, name := range names {
			b, err := os.ReadFile(filepath.Join(*dir, name))
			if err != nil {
				log.Fatal(err)
			}
			docs = append(docs, corpus.Document{ID: name, Text: string(b)})
		}
		if len(docs) == 0 {
			log.Fatalf("no .txt files under %s", *dir)
		}

		start := time.Now()
		coll := corpus.New(docs, text.ParseOptions{MinDocs: 2})
		model, err := core.BuildCollection(coll, core.Config{K: *k, Scheme: weight.LogEntropy})
		if err != nil {
			log.Fatal(err)
		}
		srv, err = server.NewWithOptions(coll, model, httpOpts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("indexed %d docs, %d terms, k=%d, %d shard(s) in %s; listening on %s",
			coll.Size(), coll.Terms(), model.K, srv.Router().Shards(),
			time.Since(start).Round(time.Millisecond), *addr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests and queued fold-ins")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if *saveModel != "" {
		// Listeners are closed and in-flight requests done, so the router
		// is quiesced — the state SaveSnapshot requires. It runs a final
		// coordinated compaction, then persists; Close afterwards only
		// drains the (now empty) queues.
		start := time.Now()
		if err := srv.Router().SaveSnapshot(*saveModel); err != nil {
			log.Printf("save-model: %v", err)
			os.Exit(1)
		}
		log.Printf("saved model snapshot to %s in %s", *saveModel, time.Since(start).Round(time.Millisecond))
	}
	if err := srv.Close(shutCtx); err != nil {
		log.Printf("engine drain: %v", err)
		os.Exit(1)
	}
	st := srv.Router().Stats()
	log.Printf("drained: %d documents across %d shard(s) (generations %v)", st.Documents, st.Shards, st.Generations)
}
