// Shard-scaling harness: measures the scatter–gather serving tier
// (internal/shard) at 1/2/4/8 shards over the 200k clustered corpus —
// single-query and batch top-10 latency plus fold-in ingest throughput —
// and merges the curve into BENCH_query.json next to the single-engine
// numbers. Parity is asserted inline before anything is timed: every
// shard count must return byte-identical results to the 1-shard
// reference, so the file can never report a number a wrong merge
// produced.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/text"
)

// shardPerfRow is one shard-count measurement.
type shardPerfRow struct {
	Shards           int     `json:"shards"`
	SingleNsPerOp    int64   `json:"single_ns_per_op"`
	SingleSpeedupVs1 float64 `json:"single_speedup_vs_1shard"`
	BatchNsPerQuery  int64   `json:"batch_ns_per_query"`
	BatchQPS         float64 `json:"batch_queries_per_sec"`
	BatchSpeedupVs1  float64 `json:"batch_speedup_vs_1shard"`
	IngestDocs       int     `json:"ingest_docs"`
	IngestDocsPerSec float64 `json:"ingest_docs_per_sec"`
	IngestSpeedupVs1 float64 `json:"ingest_speedup_vs_1shard"`
}

// shardPerfReport is the "shard_scaling" section of BENCH_query.json.
type shardPerfReport struct {
	GeneratedAt   string         `json:"generated_at"`
	NumCPU        int            `json:"num_cpu"`
	GoMaxProcs    int            `json:"gomaxprocs"`
	Docs          int            `json:"docs"`
	Factors       int            `json:"factors"`
	TopK          int            `json:"top_k"`
	BatchQueries  int            `json:"batch_queries"`
	ParityChecked bool           `json:"parity_checked"`
	Note          string         `json:"note"`
	Rows          []shardPerfRow `json:"rows"`
}

// shardPerfCollection builds a 100-token synthetic collection whose
// documents are trivially short (tokenization is not what's measured)
// paired with a hand-built model: U = I, Σ = I over the same 100 terms,
// so ProjectQuery is the identity and queries are latent vectors
// directly, while V carries the 200k clustered document coordinates the
// query benches score — the same corpus shape queryperf's 200k case uses.
func shardPerfCollection(docs, factors int, seed int64) (*corpus.Collection, *core.Model, error) {
	tokens := make([]string, factors)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("t%d", i)
	}
	cdocs := make([]corpus.Document, docs)
	for j := range cdocs {
		cdocs[j] = corpus.Document{
			ID:   fmt.Sprintf("D%06d", j),
			Text: tokens[j%factors] + " " + tokens[(j*7+13)%factors],
		}
	}
	coll := corpus.New(cdocs, text.ParseOptions{})
	if coll.Terms() != factors {
		return nil, nil, fmt.Errorf("shardperf: vocabulary has %d terms, want %d", coll.Terms(), factors)
	}
	m := clusteredRankModel(docs, factors, 256, 0.05, seed)
	m.U = dense.Identity(factors)
	return coll, m, nil
}

func runShardPerf(out string, seed int64) error {
	const (
		docs         = 200000
		factors      = 100
		topK         = 10
		batchQueries = 64
		ingestDocs   = 2000
	)
	coll, model, err := shardPerfCollection(docs, factors, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 7))
	sample := func() []float64 {
		q := make([]float64, factors)
		copy(q, model.V.Row(rng.Intn(docs)))
		for i := range q {
			q[i] += 0.02 * rng.NormFloat64()
		}
		return q
	}
	single := sample()
	batch := make([][]float64, batchQueries)
	for i := range batch {
		batch[i] = sample()
	}
	ingestTexts := make([]string, ingestDocs)
	for i := range ingestTexts {
		ingestTexts[i] = fmt.Sprintf("t%d t%d t%d", i%factors, (i*3+1)%factors, (i*11+5)%factors)
	}

	report := shardPerfReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Docs:         docs,
		Factors:      factors,
		TopK:         topK,
		BatchQueries: batchQueries,
		Note: "exact scatter-gather: results byte-identical at every shard count (asserted before timing); " +
			"speedups are what this host's core count admits — cross-shard parallelism cannot exceed gomaxprocs",
	}

	// 1-shard reference results for the parity gate.
	var refBatch [][]shard.Hit
	for _, shards := range []int{1, 2, 4, 8} {
		row, batchRes, err := benchShardCase(coll, model, shards, single, batch, ingestTexts, topK)
		if err != nil {
			return err
		}
		if shards == 1 {
			refBatch = batchRes
		} else if err := sameShardHits(refBatch, batchRes); err != nil {
			return fmt.Errorf("shardperf: %d shards: %w", shards, err)
		}
		if base := report.Rows; len(base) > 0 {
			row.SingleSpeedupVs1 = float64(base[0].SingleNsPerOp) / float64(row.SingleNsPerOp)
			row.BatchSpeedupVs1 = float64(base[0].BatchNsPerQuery) / float64(row.BatchNsPerQuery)
			row.IngestSpeedupVs1 = row.IngestDocsPerSec / base[0].IngestDocsPerSec
		} else {
			row.SingleSpeedupVs1, row.BatchSpeedupVs1, row.IngestSpeedupVs1 = 1, 1, 1
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(os.Stderr, "shardperf: %d shard(s): single %d ns/op (%.2fx), batch %d ns/query (%.2fx, %.0f qps), ingest %.0f docs/s (%.2fx)\n",
			shards, row.SingleNsPerOp, row.SingleSpeedupVs1, row.BatchNsPerQuery, row.BatchSpeedupVs1,
			row.BatchQPS, row.IngestDocsPerSec, row.IngestSpeedupVs1)
	}
	report.ParityChecked = true
	return mergeShardScaling(out, report)
}

// benchShardCase builds one router, gates on parity inputs, times the
// query paths and the ingest throughput, and tears the router down.
func benchShardCase(coll *corpus.Collection, model *core.Model, shards int, single []float64, batch [][]float64, ingestTexts []string, topK int) (shardPerfRow, [][]shard.Hit, error) {
	r, err := shard.New(coll, model, shard.Config{
		Shards: shards,
		// The cluster index is orthogonal to the scaling story and its
		// per-shard k-means build would dominate setup; the screened flat
		// path is what scatters.
		Engine: engine.Config{QueueSize: 4096, BatchTick: time.Millisecond, DisableIVF: true},
	})
	if err != nil {
		return shardPerfRow{}, nil, err
	}
	closed := false
	closeRouter := func() error {
		if closed {
			return nil
		}
		closed = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		return r.Close(ctx)
	}
	defer closeRouter() //nolint:errcheck — the explicit call below reports

	batchRes, _ := r.SearchBatch(batch, topK)

	singleBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hits, _ := r.Search(single, topK); len(hits) != topK {
				b.Fatal("bad shard rank")
			}
		}
	})
	batchBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rows, _ := r.SearchBatch(batch, topK); len(rows) != len(batch) {
				b.Fatal("bad shard batch rank")
			}
		}
	})

	// Ingest: stream the documents fire-and-forget (the expired context
	// acknowledges without waiting on each batch tick) and clock until
	// every one is in a serving snapshot.
	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	base := r.Stats().Documents
	start := time.Now()
	for i, tx := range ingestTexts {
		for {
			_, _, err := r.Submit(expired, corpus.Document{Text: tx})
			if errors.Is(err, context.Canceled) {
				break // acknowledged and queued
			}
			if errors.Is(err, engine.ErrQueueFull) {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			return shardPerfRow{}, nil, fmt.Errorf("ingest submit %d: %v", i, err)
		}
	}
	for r.Stats().Documents < base+len(ingestTexts) {
		time.Sleep(200 * time.Microsecond)
	}
	ingestSecs := time.Since(start).Seconds()

	if err := closeRouter(); err != nil {
		return shardPerfRow{}, nil, err
	}
	runtime.GC() // release this router's V copies before the next config

	perQuery := batchBench.NsPerOp() / int64(len(batch))
	return shardPerfRow{
		Shards:           shards,
		SingleNsPerOp:    singleBench.NsPerOp(),
		BatchNsPerQuery:  perQuery,
		BatchQPS:         1e9 / float64(perQuery),
		IngestDocs:       len(ingestTexts),
		IngestDocsPerSec: float64(len(ingestTexts)) / ingestSecs,
	}, batchRes, nil
}

// sameShardHits is the parity gate: identical IDs and score bits, row by
// row, rank by rank.
func sameShardHits(want, got [][]shard.Hit) error {
	if len(want) != len(got) {
		return fmt.Errorf("parity: %d rows vs %d", len(got), len(want))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			return fmt.Errorf("parity: query %d: %d hits vs %d", q, len(got[q]), len(want[q]))
		}
		for i := range want[q] {
			if want[q][i].ID != got[q][i].ID ||
				math.Float64bits(want[q][i].Score) != math.Float64bits(got[q][i].Score) {
				return fmt.Errorf("parity: query %d rank %d: %s/%v vs %s/%v",
					q, i, got[q][i].ID, got[q][i].Score, want[q][i].ID, want[q][i].Score)
			}
		}
	}
	return nil
}

// mergeShardScaling writes the report under the "shard_scaling" key of
// the (JSON object) output file, preserving every other key a -queryperf
// run put there.
func mergeShardScaling(out string, report shardPerfReport) error {
	doc := map[string]any{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("shardperf: existing %s is not a JSON object: %w", out, err)
		}
	}
	doc["shard_scaling"] = report
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
