// SVD build performance harness: times the blocked Lanczos build path
// against the frozen seed implementation (lanczos.TruncatedSVDReference) on
// paper-scale sparse term-by-document matrices and writes the numbers to a
// JSON file. "The bulk of LSI processing time is spent in computing the
// truncated SVD" (§1) — this file tracks that bulk across PRs.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/lanczos"
	"repro/internal/sparse"
)

// buildPerfCase is one (shape, k) seed-vs-blocked measurement.
type buildPerfCase struct {
	Terms          int     `json:"terms"`
	Docs           int     `json:"docs"`
	NNZ            int     `json:"nnz"`
	K              int     `json:"k"`
	MaxSteps       int     `json:"max_steps"`
	SeedSeconds    float64 `json:"seed_seconds"`
	BlockedSeconds float64 `json:"blocked_seconds"`
	Speedup        float64 `json:"speedup"`
	SeedMatVecs    int     `json:"seed_matvecs"`
	BlockedMatVecs int     `json:"blocked_matvecs"`
	SeedSteps      int     `json:"seed_steps"`
	BlockedSteps   int     `json:"blocked_steps"`
	SeedVerify     float64 `json:"seed_verify_residual"`
	BlockedVerify  float64 `json:"blocked_verify_residual"`
}

type buildPerfReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Cases       []buildPerfCase `json:"cases"`
}

// zipfTermDoc synthesizes a term-by-document count matrix with a Zipfian
// term distribution — the shape real text has: a few terms in most
// documents, a long tail of rare terms. docLen nonzeros per document.
func zipfTermDoc(terms, docs, docLen int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, uint64(terms-1))
	b := sparse.NewBuilder(terms, docs)
	for j := 0; j < docs; j++ {
		for q := 0; q < docLen; q++ {
			b.Add(int(z.Uint64()), j, 1+float64(rng.Intn(3)))
		}
	}
	return b.Build()
}

func runBuildPerf(out string, seed int64) error {
	shapes := []struct {
		terms, docs, docLen, k int
	}{
		{10000, 5000, 40, 100},
		{20000, 10000, 50, 100},
		{40000, 16000, 60, 100},
	}
	report := buildPerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, sh := range shapes {
		a := zipfTermDoc(sh.terms, sh.docs, sh.docLen, seed)
		op := lanczos.OpCSR(a)
		// Fixed iteration budget and a realistic tolerance: both solvers run
		// the same recurrence, so equal budgets mean the timing difference is
		// pure implementation. ErrNotConverged is tolerated — residuals are
		// recorded either way and judged directly.
		opts := lanczos.Options{K: sh.k, MaxSteps: 256, Tol: 1e-8, Seed: seed}

		t0 := time.Now()
		seedRes, err := lanczos.TruncatedSVDReference(op, opts)
		if err != nil && err != lanczos.ErrNotConverged {
			return fmt.Errorf("seed path %dx%d: %w", sh.terms, sh.docs, err)
		}
		seedSec := time.Since(t0).Seconds()

		t0 = time.Now()
		blockedRes, err := lanczos.TruncatedSVD(op, opts)
		if err != nil && err != lanczos.ErrNotConverged {
			return fmt.Errorf("blocked path %dx%d: %w", sh.terms, sh.docs, err)
		}
		blockedSec := time.Since(t0).Seconds()

		c := buildPerfCase{
			Terms:          sh.terms,
			Docs:           sh.docs,
			NNZ:            a.NNZ(),
			K:              sh.k,
			MaxSteps:       opts.MaxSteps,
			SeedSeconds:    seedSec,
			BlockedSeconds: blockedSec,
			Speedup:        seedSec / blockedSec,
			SeedMatVecs:    seedRes.MatVecs,
			BlockedMatVecs: blockedRes.MatVecs,
			SeedSteps:      seedRes.Steps,
			BlockedSteps:   blockedRes.Steps,
			SeedVerify:     lanczos.Verify(op, seedRes),
			BlockedVerify:  lanczos.Verify(op, blockedRes),
		}
		report.Cases = append(report.Cases, c)
		fmt.Fprintf(os.Stderr, "buildperf: %d×%d (nnz %d) k=%d: seed %.2fs, blocked %.2fs (%.2fx), verify %.1e vs %.1e\n",
			sh.terms, sh.docs, c.NNZ, sh.k, seedSec, blockedSec, c.Speedup, c.SeedVerify, c.BlockedVerify)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
