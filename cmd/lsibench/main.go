// Command lsibench regenerates the paper's tables and figures.
//
// Usage:
//
//	lsibench -list
//	lsibench -exp fig6            # one experiment
//	lsibench -exp all             # everything, in paper order
//	lsibench -exp retrieval -seed 7
//	lsibench -queryperf -out BENCH_query.json
//	lsibench -shardperf -out BENCH_query.json
//	lsibench -buildperf -out BENCH_build.json
//
// Output is a plain-text report per experiment: the regenerated
// table/figure data, the paper's corresponding claim, and named metrics.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	seed := flag.Int64("seed", 1, "seed for synthetic workloads")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment instead of text")
	queryPerf := flag.Bool("queryperf", false, "measure query-serving latency/throughput (engine vs seed path) and exit")
	buildPerf := flag.Bool("buildperf", false, "measure truncated-SVD build time (blocked vs seed Lanczos) and exit")
	shardPerf := flag.Bool("shardperf", false, "measure scatter-gather serving at 1/2/4/8 shards (exact merge, parity-gated) and exit")
	updatePerf := flag.Bool("updateperf", false, "measure SVD-update (compaction) time, O'Brien vs Golub–Kahan, and exit")
	memPerf := flag.Bool("memperf", false, "measure bytes/doc per screening tier and snapshot build-vs-restore startup, and exit")
	perfOut := flag.String("out", "", "output file for -queryperf/-shardperf (default BENCH_query.json) / -buildperf (default BENCH_build.json) / -updateperf (default BENCH_update.json) / -memperf (default BENCH_mem.json)")
	flag.Parse()

	if *memPerf {
		out := *perfOut
		if out == "" {
			out = "BENCH_mem.json"
		}
		if err := runMemPerf(out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: memperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("memory/startup performance written to %s\n", out)
		return
	}

	if *queryPerf {
		out := *perfOut
		if out == "" {
			out = "BENCH_query.json"
		}
		if err := runQueryPerf(out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: queryperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("query performance written to %s\n", out)
		return
	}

	if *shardPerf {
		out := *perfOut
		if out == "" {
			out = "BENCH_query.json"
		}
		if err := runShardPerf(out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: shardperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("shard scaling written to %s\n", out)
		return
	}

	if *updatePerf {
		out := *perfOut
		if out == "" {
			out = "BENCH_update.json"
		}
		if err := runUpdatePerf(out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: updateperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("update performance written to %s\n", out)
		return
	}

	if *buildPerf {
		out := *perfOut
		if out == "" {
			out = "BENCH_build.json"
		}
		if err := runBuildPerf(out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: buildperf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("build performance written to %s\n", out)
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-14s %s\n", r.ID, r.Title)
		}
		return
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "lsibench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	enc := json.NewEncoder(os.Stdout)
	exit := 0
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsibench: %s failed: %v\n", r.ID, err)
			exit = 1
			continue
		}
		if *asJSON {
			if err := enc.Encode(struct {
				*experiments.Result
				ElapsedMS int64 `json:"elapsed_ms"`
			}{res, time.Since(start).Milliseconds()}); err != nil {
				fmt.Fprintf(os.Stderr, "lsibench: encoding %s: %v\n", r.ID, err)
				exit = 1
			}
			continue
		}
		fmt.Print(experiments.Render(res))
		fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
