// SVD-update performance harness: times one compaction-sized document
// update under each strategy — O'Brien's dense inner SVD of the k×(k+p)
// matrix F = (Σ | U_kᵀW) versus the Golub–Kahan projection that
// bidiagonalizes the out-of-subspace block to rank l ≪ p first — on
// paper-scale corpora, and writes the numbers to a JSON file. The two
// updated models are also compared on retrieval (top-10 overlap over
// random queries): speed is only interesting while the strategies agree.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/weight"
)

// updatePerfCase is one (corpus shape, pending block) strategy-vs-strategy
// measurement.
type updatePerfCase struct {
	Terms         int     `json:"terms"`
	BaseDocs      int     `json:"base_docs"`
	PendingDocs   int     `json:"pending_docs"`
	NNZ           int     `json:"nnz"`
	K             int     `json:"k"`
	GKRank        int     `json:"gk_rank"`
	BuildSeconds  float64 `json:"build_seconds"`
	OBrienSeconds float64 `json:"obrien_seconds"`
	GKSeconds     float64 `json:"gk_seconds"`
	Speedup       float64 `json:"speedup"`
	Queries       int     `json:"queries"`
	Overlap10     float64 `json:"overlap_at_10"`
	OBrienOrth    float64 `json:"obrien_orthogonality"`
	GKOrth        float64 `json:"gk_orthogonality"`
}

type updatePerfReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Cases       []updatePerfCase `json:"cases"`
}

// zipfQuery synthesizes a raw term-space query the way zipfTermDoc
// synthesizes documents: a handful of Zipf-drawn terms with small counts.
func zipfQuery(terms, qLen int, rng *rand.Rand, z *rand.Zipf) []float64 {
	q := make([]float64, terms)
	for i := 0; i < qLen; i++ {
		q[int(z.Uint64())] += 1 + float64(rng.Intn(3))
	}
	return q
}

// overlapAt10 is the mean size of the intersection of the two models'
// top-10 result sets, divided by 10, over the given queries.
func overlapAt10(a, b *core.Model, queries [][]float64) float64 {
	var sum float64
	for _, q := range queries {
		in := make(map[int]bool, 10)
		for _, r := range a.RankTop(q, 10) {
			in[r.Doc] = true
		}
		hits := 0
		for _, r := range b.RankTop(q, 10) {
			if in[r.Doc] {
				hits++
			}
		}
		sum += float64(hits) / 10
	}
	return sum / float64(len(queries))
}

func runUpdatePerf(out string, seed int64) error {
	// Pending blocks sized like a real compaction backlog: a few percent
	// of the corpus. The O'Brien inner SVD is O((k+p)³) in the block size
	// p; GK caps the inner problem at k+l. The gap must widen with scale —
	// the ≥40k-doc case is the acceptance row.
	shapes := []struct {
		terms, baseDocs, pendDocs, docLen, k int
	}{
		{10000, 5000, 500, 40, 100},
		{20000, 20000, 1000, 50, 100},
		{20000, 40000, 2000, 50, 100},
	}
	const nQueries = 50
	report := updatePerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, sh := range shapes {
		base := zipfTermDoc(sh.terms, sh.baseDocs, sh.docLen, seed)
		pend := zipfTermDoc(sh.terms, sh.pendDocs, sh.docLen, seed+1)

		t0 := time.Now()
		model, err := core.Build(base, core.Config{K: sh.k, Scheme: weight.LogEntropy, Seed: seed})
		if err != nil {
			return fmt.Errorf("build %dx%d: %w", sh.terms, sh.baseDocs, err)
		}
		buildSec := time.Since(t0).Seconds()

		// One discarded warm-up per strategy (page-in, heap growth, GC
		// pacing), then best-of-reps: compaction is a steady-state cost.
		timeUpdate := func(st core.UpdateStrategy) (*core.Model, float64, error) {
			const reps = 3
			var kept *core.Model
			best := 0.0
			for r := 0; r <= reps; r++ {
				m := model.Clone()
				t0 := time.Now()
				if err := m.UpdateDocsOpts(pend, core.UpdateOptions{Strategy: st}); err != nil {
					return nil, 0, err
				}
				sec := time.Since(t0).Seconds()
				if r == 0 {
					continue // warm-up
				}
				if kept == nil || sec < best {
					kept, best = m, sec
				}
			}
			return kept, best, nil
		}
		ob, obSec, err := timeUpdate(core.StrategyOBrien)
		if err != nil {
			return fmt.Errorf("obrien update %dx%d: %w", sh.terms, sh.baseDocs, err)
		}
		gk, gkSec, err := timeUpdate(core.StrategyGK)
		if err != nil {
			return fmt.Errorf("gk update %dx%d: %w", sh.terms, sh.baseDocs, err)
		}

		rng := rand.New(rand.NewSource(seed + 2))
		z := rand.NewZipf(rng, 1.1, 1, uint64(sh.terms-1))
		queries := make([][]float64, nQueries)
		for i := range queries {
			queries[i] = zipfQuery(sh.terms, sh.docLen/4, rng, z)
		}

		c := updatePerfCase{
			Terms:         sh.terms,
			BaseDocs:      sh.baseDocs,
			PendingDocs:   sh.pendDocs,
			NNZ:           base.NNZ() + pend.NNZ(),
			K:             sh.k,
			GKRank:        core.DefaultGKRank,
			BuildSeconds:  buildSec,
			OBrienSeconds: obSec,
			GKSeconds:     gkSec,
			Speedup:       obSec / gkSec,
			Queries:       nQueries,
			Overlap10:     overlapAt10(ob, gk, queries),
			OBrienOrth:    ob.DocOrthogonality(),
			GKOrth:        gk.DocOrthogonality(),
		}
		report.Cases = append(report.Cases, c)
		fmt.Fprintf(os.Stderr, "updateperf: %d base + %d pending, k=%d: obrien %.3fs, gk %.3fs (%.2fx), overlap@10 %.3f\n",
			sh.baseDocs, sh.pendDocs, sh.k, obSec, gkSec, c.Speedup, c.Overlap10)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
