// Memory/startup performance harness for the int8 screening tier and
// the mmap snapshot format: measures resident bytes per document for
// each precision tier of the scoring cache (float64 / float32+residual
// / int8+scale+residual), single-query screening throughput per tier,
// and cold-start time building a tier from text (parse + SVD + caches)
// versus restoring it from a snapshot container at several corpus
// sizes — the numbers behind the "≥3× bytes/doc, O(1) startup" claims.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/rank"
	"repro/internal/shard"
	"repro/internal/text"
)

// tierBytes is one precision tier's per-document memory cost, measured
// from the arrays an engine actually holds (not a formula).
type tierBytes struct {
	Tier string `json:"tier"`
	// BytesPerDoc counts the scoring arrays scanned during screening for
	// one document row: coordinates plus any per-row certificates
	// (residual bound, quantization scale).
	BytesPerDoc    int     `json:"bytes_per_doc"`
	TotalBytes     int64   `json:"total_bytes"`
	NsPerOp        int64   `json:"ns_per_op"`
	ReductionVsF64 float64 `json:"reduction_vs_f64"`
}

// startupPoint is one corpus size's build-vs-restore comparison.
type startupPoint struct {
	Docs  int `json:"docs"`
	Terms int `json:"terms"`
	K     int `json:"k"`
	// BuildNs: corpus parse + weighting + truncated SVD + engine caches —
	// what a cold lsiserver -dir start costs.
	BuildNs int64 `json:"build_ns"`
	// SaveNs: SaveSnapshot (includes the final coordinated compaction).
	SaveNs int64 `json:"save_ns"`
	// RestoreNs: shard.Restore from the container — what a
	// lsiserver -load-model start costs.
	RestoreNs     int64   `json:"restore_ns"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	BuildOverLoad float64 `json:"build_over_load"`
}

type memPerfReport struct {
	GeneratedAt string         `json:"generated_at"`
	NumCPU      int            `json:"num_cpu"`
	ScreenDocs  int            `json:"screen_docs"`
	ScreenDim   int            `json:"screen_dim"`
	Tiers       []tierBytes    `json:"tiers"`
	Startup     []startupPoint `json:"startup"`
}

func runMemPerf(out string, seed int64) error {
	const (
		screenDocs = 50000
		screenDim  = 100
		topK       = 10
	)
	report := memPerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
		ScreenDocs:  screenDocs,
		ScreenDim:   screenDim,
	}

	// --- Tier memory + throughput: one document matrix, three engines.
	m := syntheticRankModel(screenDocs, screenDim, seed)
	rng := rand.New(rand.NewSource(seed + 3))
	q := make([]float64, screenDim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	exact := rank.NewEngineExact(m.V)
	f32 := rank.NewEngineF32(m.V)
	q8 := rank.NewEngine(m.V)

	bench := func(e *rank.Engine) int64 {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := e.TopK(q, topK); len(r) != topK {
					b.Fatal("bad rank")
				}
			}
		}).NsPerOp()
	}
	// Parity gate: a throughput number from a wrong result is worthless.
	want := exact.TopK(q, topK)
	for _, e := range []*rank.Engine{f32, q8} {
		got := e.TopK(q, topK)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("memperf: tier diverges from exact at item %d", i)
			}
		}
	}

	// Per-row screening bytes, measured from the engines' own arrays via
	// the serialization seam. The float64 tier scans Rows×Cols×8 bytes;
	// the float32 tier adds one residual certificate per row; the int8
	// tier adds a scale and a residual per row.
	parts := q8.Parts()
	per64 := 8 * parts.Cols
	per32 := 4*parts.Cols + 8
	per8 := parts.Cols + 16
	if len(parts.Mirror) != parts.Rows*parts.Cols || len(parts.Q8) != parts.Rows*parts.Cols ||
		len(parts.Eps) != parts.Rows || len(parts.Scale) != parts.Rows || len(parts.Eps8) != parts.Rows {
		return fmt.Errorf("memperf: engine arrays do not match the claimed layout")
	}
	rows := int64(parts.Rows)
	report.Tiers = []tierBytes{
		{Tier: "float64", BytesPerDoc: per64, TotalBytes: rows * int64(per64), NsPerOp: bench(exact), ReductionVsF64: 1},
		{Tier: "float32+eps", BytesPerDoc: per32, TotalBytes: rows * int64(per32), NsPerOp: bench(f32),
			ReductionVsF64: float64(per64) / float64(per32)},
		{Tier: "int8+scale+eps", BytesPerDoc: per8, TotalBytes: rows * int64(per8), NsPerOp: bench(q8),
			ReductionVsF64: float64(per64) / float64(per8)},
	}

	// --- Build vs restore startup at increasing corpus sizes. The build
	// column grows with the corpus (SVD-bound); the restore column is
	// dominated by re-parsing document text against the fixed vocabulary
	// and attaching mmap views — no factorization, no cache rebuild.
	dir, err := os.MkdirTemp("", "memperf")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, docs := range []int{400, 1600} {
		pt, err := benchStartup(dir, docs, seed)
		if err != nil {
			return err
		}
		report.Startup = append(report.Startup, pt)
		fmt.Fprintf(os.Stderr, "memperf: %d docs: build %.1fms, save %.1fms, restore %.1fms (%.1fx), %d snapshot bytes\n",
			pt.Docs, float64(pt.BuildNs)/1e6, float64(pt.SaveNs)/1e6, float64(pt.RestoreNs)/1e6,
			pt.BuildOverLoad, pt.SnapshotBytes)
	}
	for _, t := range report.Tiers {
		fmt.Fprintf(os.Stderr, "memperf: tier %-14s %5d B/doc (%.2fx vs float64), top-%d in %d ns/op\n",
			t.Tier, t.BytesPerDoc, t.ReductionVsF64, topK, t.NsPerOp)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchStartup builds a serving tier from synthetic text, saves it, and
// times the restore. Build and restore each run once — these are
// one-shot costs, and at these sizes the SVD dominates far beyond
// timer noise.
func benchStartup(dir string, docs int, seed int64) (startupPoint, error) {
	const k = 24
	synthDocs := syntheticTextCorpus(docs, seed)
	path := filepath.Join(dir, fmt.Sprintf("tier-%d.lsnp", docs))

	t0 := time.Now()
	coll, model, err := buildTier(synthDocs, k)
	if err != nil {
		return startupPoint{}, err
	}
	buildNs := time.Since(t0).Nanoseconds()
	r, err := shard.New(coll, model, shard.Config{Shards: 2, Engine: engine.Config{BatchTick: time.Millisecond}})
	if err != nil {
		return startupPoint{}, err
	}
	t1 := time.Now()
	if err := r.SaveSnapshot(path); err != nil {
		return startupPoint{}, err
	}
	saveNs := time.Since(t1).Nanoseconds()

	t2 := time.Now()
	r2, f, err := shard.Restore(path, shard.Config{Engine: engine.Config{BatchTick: time.Millisecond}}, false)
	if err != nil {
		return startupPoint{}, err
	}
	restoreNs := time.Since(t2).Nanoseconds()

	// Parity gate before reporting: restored results must match the live
	// tier bit-for-bit.
	raw := coll.QueryVector(synthDocs[0].Text)
	h1, _ := r.Search(raw, 10)
	h2, _ := r2.Search(raw, 10)
	if len(h1) != len(h2) {
		return startupPoint{}, fmt.Errorf("memperf: restore changed result count")
	}
	for i := range h1 {
		if h1[i].ID != h2[i].ID || h1[i].Score != h2[i].Score { //lsilint:ignore floatcmp — parity gate needs bit equality
			return startupPoint{}, fmt.Errorf("memperf: restore changed results at %d docs", docs)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		return startupPoint{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = r.Close(ctx)
	_ = r2.Close(ctx)
	f.Close()
	return startupPoint{
		Docs: docs, Terms: coll.Terms(), K: model.K,
		BuildNs: buildNs, SaveNs: saveNs, RestoreNs: restoreNs,
		SnapshotBytes: st.Size(),
		BuildOverLoad: float64(buildNs) / float64(restoreNs),
	}, nil
}

func buildTier(docs []corpus.Document, k int) (*corpus.Collection, *core.Model, error) {
	coll := corpus.New(docs, text.ParseOptions{MinDocs: 2})
	model, err := core.BuildCollection(coll, core.Config{K: k, Method: core.MethodDense})
	if err != nil {
		return nil, nil, err
	}
	return coll, model, nil
}

// syntheticTextCorpus emits raw text documents (topic words + shared
// vocabulary) so the build column includes real parsing and weighting.
func syntheticTextCorpus(n int, seed int64) []corpus.Document {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]corpus.Document, n)
	for i := 0; i < n; i++ {
		topic := i % 8
		var b []byte
		for w := 0; w < 60; w++ {
			b = append(b, fmt.Sprintf("t%dw%d common%d ", topic, rng.Intn(40), rng.Intn(120))...)
		}
		docs[i] = corpus.Document{ID: fmt.Sprintf("doc-%05d", i), Text: string(b)}
	}
	return docs
}
