// Query-serving performance harness: measures the scoring engine against
// the seed query path (per-document cosine recomputation + full sort) and
// writes the numbers to a JSON file so successive PRs can track the
// latency/throughput trajectory. Each collection is measured twice — at
// gomaxprocs=1 (per-core cost) and at gomaxprocs=NumCPU (what a serving
// process actually gets from the tiled parallel kernels) — and the
// cluster-pruned IVF path is reported alongside the flat screen, in exact
// mode and across an nprobe sweep with measured recall@k.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/rank"
)

// candidateBucket is one bar of the rescore-candidate histogram: how many
// sample queries needed at most MaxCandidates exact float64 rescores after
// float32 screening.
type candidateBucket struct {
	MaxCandidates int `json:"max_candidates"`
	Queries       int `json:"queries"`
}

// nprobePoint is one step of the approximate-mode sweep: latency and
// measured recall@k against the exact engine on the same query set.
type nprobePoint struct {
	NProbe              int     `json:"nprobe"`
	NsPerOp             int64   `json:"ns_per_op"`
	RecallAtK           float64 `json:"recall_at_k"`
	MeanClustersScanned float64 `json:"mean_clusters_scanned"`
}

// queryPerfCase is one (collection size, factors, gomaxprocs)
// measurement. The engine columns keep their historical meaning — the
// pure float64 scoring engine of PR 1 — the screen columns measure the
// two-stage float32-screened path of PR 5, and the ivf columns measure
// the cluster-pruned exact path over the same documents, so the file
// records all three trajectories.
type queryPerfCase struct {
	Docs       int  `json:"docs"`
	Factors    int  `json:"factors"`
	TopK       int  `json:"top_k"`
	GoMaxProcs int  `json:"gomaxprocs"`
	Clustered  bool `json:"clustered_data"`

	SeedNsPerOp     int64   `json:"seed_ns_per_op"`
	EngineNsPerOp   int64   `json:"engine_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	BatchQueries    int     `json:"batch_queries"`
	BatchNsPerQuery int64   `json:"batch_ns_per_query"`
	BatchQPS        float64 `json:"batch_queries_per_sec"`

	ScreenNsPerOp       int64             `json:"screen_ns_per_op"`
	ScreenSpeedupVsEng  float64           `json:"screen_speedup_vs_engine"`
	ScreenSpeedupVsSeed float64           `json:"screen_speedup_vs_seed"`
	ScreenBatchNsPerQry int64             `json:"screen_batch_ns_per_query"`
	ScreenBatchQPS      float64           `json:"screen_batch_queries_per_sec"`
	MeanCandidates      float64           `json:"mean_rescore_candidates"`
	CandidateHist       []candidateBucket `json:"rescore_candidate_hist"`

	// Exact cluster-pruned path: same byte-identical results as the
	// engine/screen columns, scanning only clusters the certified bound
	// cannot rule out.
	IVFClusters          int           `json:"ivf_clusters"`
	IVFNsPerOp           int64         `json:"ivf_ns_per_op"`
	IVFSpeedupVsScreen   float64       `json:"ivf_speedup_vs_screen"`
	IVFBatchNsPerQry     int64         `json:"ivf_batch_ns_per_query"`
	IVFBatchQPS          float64       `json:"ivf_batch_queries_per_sec"`
	IVFMeanClustersScans float64       `json:"ivf_mean_clusters_scanned"`
	IVFMeanScannedRows   float64       `json:"ivf_mean_scanned_rows"`
	Approx               []nprobePoint `json:"approx_nprobe_sweep"`
}

type queryPerfReport struct {
	GeneratedAt string          `json:"generated_at"`
	NumCPU      int             `json:"num_cpu"`
	Cases       []queryPerfCase `json:"cases"`
	// ShardScaling is -shardperf's section, carried through verbatim so a
	// -queryperf rerun doesn't erase the scatter-gather curve (and vice
	// versa: shardperf merges around these keys too).
	ShardScaling json.RawMessage `json:"shard_scaling,omitempty"`
}

// syntheticRankModel builds a Model directly from random document vectors;
// the SVD is irrelevant here — only the scoring path is measured.
func syntheticRankModel(docs, k int, seed int64) *core.Model {
	rng := rand.New(rand.NewSource(seed))
	v := dense.New(docs, k)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	return wrapRankModel(v, k)
}

// clusteredRankModel draws document vectors around centers well-separated
// unit directions with the given spread — latent coordinates with real
// neighborhood structure, where cluster pruning has something to prune
// (isotropic gaussians give every cluster a radius near √2, so certified
// bounds can never exclude anything).
func clusteredRankModel(docs, k, centers int, spread float64, seed int64) *core.Model {
	rng := rand.New(rand.NewSource(seed))
	cents := dense.New(centers, k)
	for i := range cents.Data {
		cents.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < centers; i++ {
		dense.Normalize(cents.Row(i))
	}
	v := dense.New(docs, k)
	for i := 0; i < docs; i++ {
		c := cents.Row(rng.Intn(centers))
		row := v.Row(i)
		for j := range row {
			row[j] = c[j] + spread*rng.NormFloat64()
		}
	}
	return wrapRankModel(v, k)
}

func wrapRankModel(v *dense.Matrix, k int) *core.Model {
	s := make([]float64, k)
	for i := range s {
		s[i] = 1
	}
	return &core.Model{K: k, U: dense.New(1, k), S: s, V: v}
}

// seedRank replicates the seed query path byte-for-byte: one cosine per
// document (recomputing both norms) followed by a full O(n log n) sort.
func seedRank(v *dense.Matrix, qhat []float64) []core.Ranked {
	out := make([]core.Ranked, v.Rows)
	for j := 0; j < v.Rows; j++ {
		out[j] = core.Ranked{Doc: j, Score: dense.Cosine(qhat, v.Row(j))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

// queryPerfWorkload is one collection plus its query set; engines are
// built once (at full parallelism) and timed at each gomaxprocs setting.
type queryPerfWorkload struct {
	docs      int
	clustered bool
	model     *core.Model
	qhat      []float64
	qhats     [][]float64
	exact     *rank.Engine
	screened  *rank.Engine
	ivf       *rank.Engine
}

func runQueryPerf(out string, seed int64) error {
	const (
		factors      = 100
		topK         = 10
		batchQueries = 64
	)
	report := queryPerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		NumCPU:      runtime.NumCPU(),
	}
	shapes := []struct {
		docs      int
		clustered bool
	}{
		{10000, false},
		{50000, false},
		// The pruning showcase: 200k docs around 256 tight centers —
		// the neighborhood structure real latent coordinates have, at a
		// size where a full scan is painful.
		{200000, true},
	}
	procSettings := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		procSettings = procSettings[:1]
	}
	for _, shape := range shapes {
		var m *core.Model
		if shape.clustered {
			m = clusteredRankModel(shape.docs, factors, 256, 0.05, seed)
		} else {
			m = syntheticRankModel(shape.docs, factors, seed)
		}
		rng := rand.New(rand.NewSource(seed + 7))
		sample := func() []float64 {
			q := make([]float64, factors)
			if shape.clustered {
				// Queries land near documents — the serving distribution a
				// clustered corpus implies, and the one recall@k is defined
				// over.
				copy(q, m.V.Row(rng.Intn(shape.docs)))
				for i := range q {
					q[i] += 0.02 * rng.NormFloat64()
				}
			} else {
				for i := range q {
					q[i] = rng.NormFloat64()
				}
			}
			return q
		}
		w := queryPerfWorkload{docs: shape.docs, clustered: shape.clustered, model: m, qhat: sample()}
		for b := 0; b < batchQueries; b++ {
			w.qhats = append(w.qhats, sample())
		}
		// Build the three cache flavors once, outside every timed region —
		// a serving process pays construction once. exact is the PR 1
		// float64 engine, screened the PR 5 two-stage mirror, ivf the
		// cluster-pruned engine over the same mirror.
		w.exact = rank.NewEngineExact(m.V)
		w.screened = rank.NewEngine(m.V)
		w.ivf = w.screened.BuildIVF(rank.IVFConfig{})
		for _, procs := range procSettings {
			c, err := benchQueryCase(&w, procs, topK, batchQueries)
			if err != nil {
				return err
			}
			report.Cases = append(report.Cases, c)
		}
	}
	if prev, err := os.ReadFile(out); err == nil {
		var old queryPerfReport
		if json.Unmarshal(prev, &old) == nil {
			report.ShardScaling = old.ShardScaling
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchQueryCase times every path of one workload at the given
// gomaxprocs and assembles the case row.
func benchQueryCase(w *queryPerfWorkload, procs, topK, batchQueries int) (queryPerfCase, error) {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	qbatch := dense.NewFromRows(w.qhats)
	seedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := seedRank(w.model.V, w.qhat); len(r) != w.docs {
				b.Fatal("bad seed rank")
			}
		}
	})
	engRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.exact.TopK(w.qhat, topK); len(r) != topK {
				b.Fatal("bad engine rank")
			}
		}
	})
	scrRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.screened.TopK(w.qhat, topK); len(r) != topK {
				b.Fatal("bad screened rank")
			}
		}
	})
	ivfRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.ivf.TopK(w.qhat, topK); len(r) != topK {
				b.Fatal("bad ivf rank")
			}
		}
	})
	batchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.exact.TopKBatch(qbatch, topK); len(r) != batchQueries {
				b.Fatal("bad batch rank")
			}
		}
	})
	scrBatchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.screened.TopKBatch(qbatch, topK); len(r) != batchQueries {
				b.Fatal("bad screened batch rank")
			}
		}
	})
	ivfBatchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := w.ivf.TopKBatch(qbatch, topK); len(r) != batchQueries {
				b.Fatal("bad ivf batch rank")
			}
		}
	})

	// Candidate-set and cluster-scan statistics over the batch queries,
	// verifying byte-parity of the pruned path against the exact engine
	// on the way (the bench must not report a number a wrong result
	// produced).
	hist := map[int]int{}
	var totalCand, totalScans, totalRows int
	clusters, _, _ := w.ivf.IVF()
	for _, q := range w.qhats {
		items, st := w.ivf.TopKWithStats(q, topK)
		if len(items) != topK || !st.Screened {
			return queryPerfCase{}, fmt.Errorf("queryperf: ivf stats missing at %d docs", w.docs)
		}
		exactItems := w.exact.TopK(q, topK)
		for i := range items {
			if items[i] != exactItems[i] {
				return queryPerfCase{}, fmt.Errorf("queryperf: ivf result diverges from exact at %d docs", w.docs)
			}
		}
		bucket := 1
		for bucket < st.Candidates {
			bucket *= 2
		}
		hist[bucket]++
		totalCand += st.Candidates
		totalScans += st.ClustersScanned
		totalRows += st.ScannedRows
	}
	buckets := make([]int, 0, len(hist))
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	var candHist []candidateBucket
	for _, b := range buckets {
		candHist = append(candHist, candidateBucket{MaxCandidates: b, Queries: hist[b]})
	}

	// Approximate-mode sweep: per-query recall@k against the exact
	// engine on the same query set — a measured recall curve, not a
	// claimed one.
	var sweep []nprobePoint
	for _, nprobe := range []int{1, 4, 16} {
		if nprobe > clusters {
			break
		}
		var hits, scans int
		for _, q := range w.qhats {
			got, st := w.ivf.TopKProbe(q, topK, nprobe)
			scans += st.ClustersScanned
			want := w.exact.TopK(q, topK)
			inWant := make(map[int]bool, topK)
			for _, it := range want {
				inWant[it.Doc] = true
			}
			for _, it := range got {
				if inWant[it.Doc] {
					hits++
				}
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r, _ := w.ivf.TopKProbe(w.qhat, topK, nprobe); len(r) != topK {
					b.Fatal("bad probe rank")
				}
			}
		})
		sweep = append(sweep, nprobePoint{
			NProbe:              nprobe,
			NsPerOp:             res.NsPerOp(),
			RecallAtK:           float64(hits) / float64(len(w.qhats)*topK),
			MeanClustersScanned: float64(scans) / float64(len(w.qhats)),
		})
	}

	perQuery := batchRes.NsPerOp() / int64(batchQueries)
	scrPerQuery := scrBatchRes.NsPerOp() / int64(batchQueries)
	ivfPerQuery := ivfBatchRes.NsPerOp() / int64(batchQueries)
	nq := float64(len(w.qhats))
	c := queryPerfCase{
		Docs:       w.docs,
		Factors:    w.model.K,
		TopK:       topK,
		GoMaxProcs: procs,
		Clustered:  w.clustered,

		SeedNsPerOp:     seedRes.NsPerOp(),
		EngineNsPerOp:   engRes.NsPerOp(),
		Speedup:         float64(seedRes.NsPerOp()) / float64(engRes.NsPerOp()),
		BatchQueries:    batchQueries,
		BatchNsPerQuery: perQuery,
		BatchQPS:        1e9 / float64(perQuery),

		ScreenNsPerOp:       scrRes.NsPerOp(),
		ScreenSpeedupVsEng:  float64(engRes.NsPerOp()) / float64(scrRes.NsPerOp()),
		ScreenSpeedupVsSeed: float64(seedRes.NsPerOp()) / float64(scrRes.NsPerOp()),
		ScreenBatchNsPerQry: scrPerQuery,
		ScreenBatchQPS:      1e9 / float64(scrPerQuery),
		MeanCandidates:      float64(totalCand) / nq,
		CandidateHist:       candHist,

		IVFClusters:          clusters,
		IVFNsPerOp:           ivfRes.NsPerOp(),
		IVFSpeedupVsScreen:   float64(scrRes.NsPerOp()) / float64(ivfRes.NsPerOp()),
		IVFBatchNsPerQry:     ivfPerQuery,
		IVFBatchQPS:          1e9 / float64(ivfPerQuery),
		IVFMeanClustersScans: float64(totalScans) / nq,
		IVFMeanScannedRows:   float64(totalRows) / nq,
		Approx:               sweep,
	}
	fmt.Fprintf(os.Stderr, "queryperf: %d docs × %d factors @ gomaxprocs=%d: seed %d ns/op, engine top-%d %d ns/op (%.2fx), screened %d ns/op (%.2fx vs engine), ivf %d ns/op (%.2fx vs screened, %.1f/%d clusters scanned)\n",
		w.docs, w.model.K, procs, c.SeedNsPerOp, topK, c.EngineNsPerOp, c.Speedup,
		c.ScreenNsPerOp, c.ScreenSpeedupVsEng, c.IVFNsPerOp, c.IVFSpeedupVsScreen,
		c.IVFMeanClustersScans, clusters)
	for _, p := range sweep {
		fmt.Fprintf(os.Stderr, "queryperf:   nprobe=%d: %d ns/op, recall@%d %.3f\n",
			p.NProbe, p.NsPerOp, topK, p.RecallAtK)
	}
	return c, nil
}
