// Query-serving performance harness: measures the scoring engine against
// the seed query path (per-document cosine recomputation + full sort) and
// writes the numbers to a JSON file so successive PRs can track the
// latency/throughput trajectory.
package main

// benchmark harness: wall-clock timing is the product.
//lsilint:file-ignore walltime

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/rank"
)

// candidateBucket is one bar of the rescore-candidate histogram: how many
// sample queries needed at most MaxCandidates exact float64 rescores after
// float32 screening.
type candidateBucket struct {
	MaxCandidates int `json:"max_candidates"`
	Queries       int `json:"queries"`
}

// queryPerfCase is one (collection size, factors) measurement. The engine
// columns keep their historical meaning — the pure float64 scoring engine
// of PR 1 — and the screen columns measure the two-stage float32-screened
// path against the same documents, so the file records both trajectories.
type queryPerfCase struct {
	Docs            int     `json:"docs"`
	Factors         int     `json:"factors"`
	TopK            int     `json:"top_k"`
	SeedNsPerOp     int64   `json:"seed_ns_per_op"`
	EngineNsPerOp   int64   `json:"engine_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	BatchQueries    int     `json:"batch_queries"`
	BatchNsPerQuery int64   `json:"batch_ns_per_query"`
	BatchQPS        float64 `json:"batch_queries_per_sec"`

	ScreenNsPerOp       int64             `json:"screen_ns_per_op"`
	ScreenSpeedupVsEng  float64           `json:"screen_speedup_vs_engine"`
	ScreenSpeedupVsSeed float64           `json:"screen_speedup_vs_seed"`
	ScreenBatchNsPerQry int64             `json:"screen_batch_ns_per_query"`
	ScreenBatchQPS      float64           `json:"screen_batch_queries_per_sec"`
	MeanCandidates      float64           `json:"mean_rescore_candidates"`
	CandidateHist       []candidateBucket `json:"rescore_candidate_hist"`
}

type queryPerfReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Cases       []queryPerfCase `json:"cases"`
}

// syntheticRankModel builds a Model directly from random document vectors;
// the SVD is irrelevant here — only the scoring path is measured.
func syntheticRankModel(docs, k int, seed int64) *core.Model {
	rng := rand.New(rand.NewSource(seed))
	v := dense.New(docs, k)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	s := make([]float64, k)
	for i := range s {
		s[i] = 1
	}
	return &core.Model{K: k, U: dense.New(1, k), S: s, V: v}
}

// seedRank replicates the seed query path byte-for-byte: one cosine per
// document (recomputing both norms) followed by a full O(n log n) sort.
func seedRank(v *dense.Matrix, qhat []float64) []core.Ranked {
	out := make([]core.Ranked, v.Rows)
	for j := 0; j < v.Rows; j++ {
		out[j] = core.Ranked{Doc: j, Score: dense.Cosine(qhat, v.Row(j))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

func runQueryPerf(out string, seed int64) error {
	const (
		factors      = 100
		topK         = 10
		batchQueries = 64
	)
	report := queryPerfReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, docs := range []int{10000, 50000} {
		m := syntheticRankModel(docs, factors, seed)
		rng := rand.New(rand.NewSource(seed + 7))
		qhat := make([]float64, factors)
		for i := range qhat {
			qhat[i] = rng.NormFloat64()
		}
		qhats := make([][]float64, batchQueries)
		for b := range qhats {
			q := make([]float64, factors)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			qhats[b] = q
		}
		// Bench the two cache flavors directly so the columns keep exact
		// meanings: exact is the PR 1 float64 engine, screened is the
		// two-stage mirror path over the same vectors. Construction happens
		// outside the timed region; a serving process pays it once.
		exact := rank.NewEngineExact(m.V)
		screened := rank.NewEngine(m.V)
		qbatch := dense.NewFromRows(qhats)

		seedRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := seedRank(m.V, qhat); len(r) != docs {
					b.Fatal("bad seed rank")
				}
			}
		})
		engRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := exact.TopK(qhat, topK); len(r) != topK {
					b.Fatal("bad engine rank")
				}
			}
		})
		scrRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := screened.TopK(qhat, topK); len(r) != topK {
					b.Fatal("bad screened rank")
				}
			}
		})
		batchRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := exact.TopKBatch(qbatch, topK); len(r) != batchQueries {
					b.Fatal("bad batch rank")
				}
			}
		})
		scrBatchRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := screened.TopKBatch(qbatch, topK); len(r) != batchQueries {
					b.Fatal("bad screened batch rank")
				}
			}
		})
		// Candidate-set sizes over the batch queries: how many rows survived
		// the float32 screen and were rescored in float64, bucketed by
		// powers of two.
		hist := map[int]int{}
		var totalCand int
		for _, q := range qhats {
			items, st := screened.TopKWithStats(q, topK)
			if len(items) != topK || !st.Screened {
				return fmt.Errorf("queryperf: screened stats missing at %d docs", docs)
			}
			bucket := 1
			for bucket < st.Candidates {
				bucket *= 2
			}
			hist[bucket]++
			totalCand += st.Candidates
		}
		buckets := make([]int, 0, len(hist))
		for b := range hist {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		var candHist []candidateBucket
		for _, b := range buckets {
			candHist = append(candHist, candidateBucket{MaxCandidates: b, Queries: hist[b]})
		}

		perQuery := batchRes.NsPerOp() / int64(batchQueries)
		scrPerQuery := scrBatchRes.NsPerOp() / int64(batchQueries)
		c := queryPerfCase{
			Docs:            docs,
			Factors:         factors,
			TopK:            topK,
			SeedNsPerOp:     seedRes.NsPerOp(),
			EngineNsPerOp:   engRes.NsPerOp(),
			Speedup:         float64(seedRes.NsPerOp()) / float64(engRes.NsPerOp()),
			BatchQueries:    batchQueries,
			BatchNsPerQuery: perQuery,
			BatchQPS:        1e9 / float64(perQuery),

			ScreenNsPerOp:       scrRes.NsPerOp(),
			ScreenSpeedupVsEng:  float64(engRes.NsPerOp()) / float64(scrRes.NsPerOp()),
			ScreenSpeedupVsSeed: float64(seedRes.NsPerOp()) / float64(scrRes.NsPerOp()),
			ScreenBatchNsPerQry: scrPerQuery,
			ScreenBatchQPS:      1e9 / float64(scrPerQuery),
			MeanCandidates:      float64(totalCand) / float64(len(qhats)),
			CandidateHist:       candHist,
		}
		report.Cases = append(report.Cases, c)
		fmt.Fprintf(os.Stderr, "queryperf: %d docs × %d factors: seed %d ns/op, engine top-%d %d ns/op (%.2fx), screened %d ns/op (%.2fx vs engine), batch %d ns/query (screened %d), mean candidates %.1f\n",
			docs, factors, c.SeedNsPerOp, topK, c.EngineNsPerOp, c.Speedup,
			c.ScreenNsPerOp, c.ScreenSpeedupVsEng, perQuery, scrPerQuery, c.MeanCandidates)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
