// lsilint is the project's static-analysis driver: it loads every
// package in the module with the stdlib go/parser + go/types toolchain
// and runs the internal/lint suite — determinism, concurrency, and
// hot-path allocation checks that encode invariants the compiler cannot
// see (bit-identical parallel reductions, lock discipline, zero-alloc
// kernels), plus the interprocedural module-wide checks (guardedby,
// snapshotsafe, noalloctrans) built on the call graph. See
// docs/STATIC_ANALYSIS.md for every check ID and the annotation
// vocabulary.
//
// Usage:
//
//	lsilint [-checks id,id] [-json] [-tests] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. -tests also
// loads _test.go files (the stress suites) into the analysis. -json
// emits one JSON object per finding on stdout instead of text.
//
// Exit codes:
//
//	0  no findings survived the suppression directives
//	1  at least one finding
//	2  usage or load error (bad flag, unknown check, type-check failure)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checksFlag = flag.String("checks", "", "comma-separated check IDs to run (default: all)")
		listFlag   = flag.Bool("list", false, "list registered checks and exit")
		jsonFlag   = flag.Bool("json", false, "emit findings as JSON objects (one per line)")
		testsFlag  = flag.Bool("tests", false, "include _test.go files in the analysis")
	)
	flag.Parse()

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.ID, c.Doc)
		}
		for _, c := range lint.ModuleChecks() {
			fmt.Printf("%-12s %s (module-wide)\n", c.ID, c.Doc)
		}
		return
	}

	selected, selectedModule, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	mod, err := lint.LoadModuleWith(root, patterns, lint.LoadOptions{IncludeTests: *testsFlag})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	emit := func(d lint.Diagnostic) {
		if *jsonFlag {
			printJSON(cwd, d)
		} else {
			fmt.Println(relativize(cwd, d))
		}
	}

	linted, findings := 0, 0
	for _, pkg := range mod.Pkgs {
		if !pkg.Matched {
			continue
		}
		linted++
		for _, d := range lint.RunChecks(pkg, selected) {
			findings++
			emit(d)
		}
	}
	for _, d := range lint.RunModuleChecks(mod, selectedModule) {
		findings++
		emit(d)
	}

	nChecks := len(selected) + len(selectedModule)
	if selected == nil && selectedModule == nil {
		nChecks = len(lint.Checks()) + len(lint.ModuleChecks())
	}
	fmt.Fprintf(os.Stderr, "lsilint: %d package(s), %d check(s), %d finding(s)\n",
		linted, nChecks, findings)
	if findings > 0 {
		os.Exit(1)
	}
}

// jsonDiagnostic is the machine-readable finding shape for CI and
// editors: file, 1-based line/column, check ID, and message.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func printJSON(cwd string, d lint.Diagnostic) {
	file := d.Pos.Filename
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	out, err := json.Marshal(jsonDiagnostic{
		File:    file,
		Line:    d.Pos.Line,
		Column:  d.Pos.Column,
		Check:   d.Check,
		Message: d.Message,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint: encoding finding:", err)
		os.Exit(2)
	}
	fmt.Println(string(out))
}

// selectChecks resolves the -checks flag into per-package and
// module-wide selections; (nil, nil) means the full suite. When the flag
// is set, only the named checks run — a spec naming only module checks
// disables the per-package suite, and vice versa.
func selectChecks(spec string) ([]*lint.Check, []*lint.ModuleCheck, error) {
	if spec == "" {
		return nil, nil, nil
	}
	pkgChecks := []*lint.Check{}
	modChecks := []*lint.ModuleCheck{}
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if c, ok := lint.Lookup(id); ok {
			pkgChecks = append(pkgChecks, c)
			continue
		}
		if mc, ok := lint.LookupModule(id); ok {
			modChecks = append(modChecks, mc)
			continue
		}
		return nil, nil, fmt.Errorf("unknown check %q (see -list)", id)
	}
	return pkgChecks, modChecks, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relativize shortens a finding's path to be cwd-relative when possible,
// so terminal output is clickable and greppable.
func relativize(cwd string, d lint.Diagnostic) string {
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
