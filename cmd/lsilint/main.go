// lsilint is the project's static-analysis driver: it loads every
// package in the module with the stdlib go/parser + go/types toolchain
// and runs the internal/lint suite — determinism, concurrency, and
// hot-path allocation checks that encode invariants the compiler cannot
// see (bit-identical parallel reductions, lock discipline, zero-alloc
// kernels). See docs/STATIC_ANALYSIS.md for every check ID and the
// //lsilint:noalloc / //lsilint:ignore annotations.
//
// Usage:
//
//	lsilint [-checks id,id] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. Exit status
// is 1 when any finding survives the suppression directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checksFlag = flag.String("checks", "", "comma-separated check IDs to run (default: all)")
		listFlag   = flag.Bool("list", false, "list registered checks and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.ID, c.Doc)
		}
		return
	}

	selected, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	mod, err := lint.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsilint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	linted, findings := 0, 0
	for _, pkg := range mod.Pkgs {
		if !pkg.Matched {
			continue
		}
		linted++
		for _, d := range lint.RunChecks(pkg, selected) {
			findings++
			fmt.Println(relativize(cwd, d))
		}
	}
	nChecks := len(selected)
	if selected == nil {
		nChecks = len(lint.Checks())
	}
	fmt.Fprintf(os.Stderr, "lsilint: %d package(s), %d check(s), %d finding(s)\n",
		linted, nChecks, findings)
	if findings > 0 {
		os.Exit(1)
	}
}

// selectChecks resolves the -checks flag, nil meaning the full suite.
func selectChecks(spec string) ([]*lint.Check, error) {
	if spec == "" {
		return nil, nil
	}
	var out []*lint.Check
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		c, ok := lint.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown check %q (see -list)", id)
		}
		out = append(out, c)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relativize shortens a finding's path to be cwd-relative when possible,
// so terminal output is clickable and greppable.
func relativize(cwd string, d lint.Diagnostic) string {
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
