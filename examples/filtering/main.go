// Filtering demonstrates §5.3: a standing interest profile matched against
// an incoming document stream (selective dissemination of information),
// plus relevance feedback improving the profile.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/filter"
	"repro/internal/text"
	"repro/internal/weight"
)

func main() {
	// A synthetic "news" collection: 8 topics, heavy synonym variation.
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 2024, Topics: 8, Docs: 320, DocLen: 40,
		SynonymsPerConcept: 5, DocVariantLoyalty: 1.0, QueriesPerTopic: 1,
	})
	// Train the LSI space on the first 200 documents.
	train := corpus.New(s.Docs[:200], text.ParseOptions{MinDocs: 2})
	model, err := core.BuildCollection(train, core.Config{K: 16, Scheme: weight.LogEntropy})
	if err != nil {
		log.Fatal(err)
	}

	// The user's standing interest is the first generated query.
	q := s.Queries[0]
	profile := filter.FromQuery(model, train.Vocab.Count(q.Text), 0.5)
	fmt.Printf("standing interest: %q (threshold %.2f)\n\n", q.Text, profile.Threshold)

	// Stream the remaining 120 documents past the profile.
	relevant := map[int]bool{}
	for _, j := range q.Relevant {
		if j >= 200 {
			relevant[j-200] = true
		}
	}
	var stream [][]float64
	for _, d := range s.Docs[200:] {
		stream = append(stream, train.Vocab.Count(d.Text))
	}
	recommended := profile.Stream(model, stream)
	hits := 0
	for _, i := range recommended {
		if relevant[i] {
			hits++
		}
	}
	fmt.Printf("stream of %d documents: %d recommended, %d of them relevant (of %d relevant in stream)\n",
		len(stream), len(recommended), hits, len(relevant))

	// Relevance feedback: replace the profile with the centroid of the
	// first three documents the user confirmed relevant.
	fb, err := filter.ReplaceWithFeedback(model, q.Relevant, 3)
	if err != nil {
		log.Fatal(err)
	}
	fb.Threshold = profile.Threshold
	rec2 := fb.Stream(model, stream)
	hits2 := 0
	for _, i := range rec2 {
		if relevant[i] {
			hits2++
		}
	}
	fmt.Printf("after 3-document relevance feedback: %d recommended, %d relevant\n",
		len(rec2), hits2)
	fmt.Println("\n(the paper reports feedback improving retrieval by 33–67%, §5.1)")
}
