// Medline walks through the paper's §3 worked example end to end: the
// Table 3 term–document matrix, the k=2 factorization (Figures 4–5), the
// "age of children with blood abnormalities" query (Figure 6, Table 4),
// folding-in the Table 5 topics (Figure 7), recomputing the SVD (Figure 8),
// and SVD-updating (Figure 9).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/vsm"
)

func main() {
	coll := corpus.MED()

	fmt.Println("— Table 3: the 18×14 term–document matrix —")
	d := coll.TD.Dense()
	for i, term := range coll.Vocab.Terms {
		fmt.Printf("%-15s", term)
		for _, v := range d[i] {
			fmt.Printf("%2.0f", v)
		}
		fmt.Println()
	}

	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— Figure 4/5: k=2 factorization (σ = %.4f, %.4f) —\n", model.S[0], model.S[1])
	tc := model.TermCoords()
	for i, term := range coll.Vocab.Terms {
		fmt.Printf("%-15s (%+.4f, %+.4f)\n", term, tc.At(i, 0), tc.At(i, 1))
	}

	q := coll.QueryVector(corpus.MEDQuery)
	qhat := model.ProjectQuery(q)
	fmt.Printf("\nquery %q\n  -> q̂ = (%+.4f, %+.4f)\n", corpus.MEDQuery, qhat[0], qhat[1])

	fmt.Println("\n— Figure 6: LSI ranking vs lexical matching —")
	for _, r := range model.Rank(q) {
		fmt.Printf("  %-4s cosine %+.3f\n", coll.Docs[r.Doc].ID, r.Score)
	}
	fmt.Print("lexical matches:")
	for _, j := range vsm.LexicalMatch(coll.TD, q, 1) {
		fmt.Printf(" %s", coll.Docs[j].ID)
	}
	fmt.Println("\n(M9, the most relevant topic — christmas disease is hemophilia in" +
		" children — is found only by LSI; it shares no word with the query)")

	fmt.Println("\n— Table 4: returned documents at cosine ≥ 0.40 for k = 2, 4, 8 —")
	for _, k := range []int{2, 4, 8} {
		mk, err := core.BuildCollection(coll, core.Config{K: k, Method: core.MethodDense})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d:", k)
		for _, h := range mk.AboveThreshold(mk.ProjectQuery(q), 0.40) {
			fmt.Printf("  %s %.2f", coll.Docs[h.Doc].ID, h.Score)
		}
		fmt.Println()
	}

	fmt.Println("\n— Figure 7: folding in M15 and M16 —")
	folded, _ := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	folded.FoldInDocs(coll.DocVectors(corpus.MEDUpdateTopics))
	dc := folded.DocCoords()
	fmt.Printf("  M15 at (%+.4f, %+.4f), M16 at (%+.4f, %+.4f)\n",
		dc.At(14, 0), dc.At(14, 1), dc.At(15, 0), dc.At(15, 1))
	fmt.Printf("  orthogonality loss ‖V̂ᵀV̂−I‖ = %.4f (originals frozen)\n", folded.DocOrthogonality())

	fmt.Println("\n— Figure 8: recomputing the SVD of the 18×16 matrix —")
	ext := coll.Extend(corpus.MEDUpdateTopics, corpus.MEDParseOptions())
	recomputed, err := core.BuildCollection(ext, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		log.Fatal(err)
	}
	rc := recomputed.DocCoords()
	fmt.Printf("  rats cluster M13 (%+.3f,%+.3f) M14 (%+.3f,%+.3f) M15 (%+.3f,%+.3f)\n",
		rc.At(12, 0), rc.At(12, 1), rc.At(13, 0), rc.At(13, 1), rc.At(14, 0), rc.At(14, 1))

	fmt.Println("\n— Figure 9: SVD-updating with M15 and M16 —")
	updated, _ := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err := updated.UpdateDocs(coll.DocVectors(corpus.MEDUpdateTopics)); err != nil {
		log.Fatal(err)
	}
	uc := updated.DocCoords()
	fmt.Printf("  M15 at (%+.4f, %+.4f), M16 at (%+.4f, %+.4f)\n",
		uc.At(14, 0), uc.At(14, 1), uc.At(15, 0), uc.At(15, 1))
	fmt.Printf("  orthogonality loss = %.2e (update maintains the true rank-k factors)\n",
		updated.DocOrthogonality())
	fmt.Printf("  σ after update: (%.4f, %.4f) — the spectrum responds to the new topics\n",
		updated.S[0], updated.S[1])
}
