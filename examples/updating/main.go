// Updating walks through the paper's §4 trade-off on a realistic synthetic
// collection: folding-in vs SVD-updating vs recomputing, with wall-clock
// timings, orthogonality diagnostics, and the analytic flop model of
// Table 7 side by side.
package main

// example prints wall-clock timings by design.
//lsilint:file-ignore walltime

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/flops"
	"repro/internal/weight"
)

func main() {
	// A 500-document collection plus 25 arriving documents.
	total := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 11, Topics: 10, Docs: 525, DocLen: 40, SynonymsPerConcept: 4,
	})
	base := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 11, Topics: 10, Docs: 500, DocLen: 40, SynonymsPerConcept: 4,
	})
	newDocs := total.Docs[500:]
	d := base.DocVectors(newDocs)
	const k = 30

	build := func() *core.Model {
		m, err := core.BuildCollection(base.Collection, core.Config{K: k, Scheme: weight.LogEntropy, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	fmt.Printf("collection: %d terms × %d docs, k=%d, %d new documents\n\n",
		base.Terms(), base.Size(), k, len(newDocs))

	// 1. Folding-in (Eq 7).
	folded := build()
	t0 := time.Now()
	folded.FoldInDocs(d)
	foldT := time.Since(t0)
	fmt.Printf("folding-in:    %10v   ‖V̂ᵀV̂−I‖ = %.4f (orthogonality lost)\n",
		foldT, folded.DocOrthogonality())

	// 2. SVD-updating (§4.2 document phase).
	updated := build()
	t0 = time.Now()
	if err := updated.UpdateDocs(d); err != nil {
		log.Fatal(err)
	}
	updT := time.Since(t0)
	fmt.Printf("SVD-updating:  %10v   ‖VᵀV−I‖ = %.2e (maintained)\n",
		updT, updated.DocOrthogonality())

	// 3. Recomputing (§3.4).
	t0 = time.Now()
	if _, err := core.Build(base.TD.AugmentCols(d), core.Config{K: k, Scheme: weight.LogEntropy, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	recT := time.Since(t0)
	fmt.Printf("recomputing:   %10v   (gold standard)\n\n", recT)

	// Table 7's analytic model for the same shape.
	p := flops.Params{
		M: base.Terms(), N: base.Size(), K: k, P: len(newDocs),
		I: 120, Trp: k,
		NNZA: base.TD.NNZ(), NNZD: d.NNZ(),
	}
	fmt.Println("Table 7 analytic flop counts for this shape:")
	for _, row := range flops.Table(p) {
		fmt.Printf("  %-28s %12.4g\n", row.Method, row.Flops)
	}
	fmt.Printf("\nmeasured ordering fold ≪ update < recompute: %v ≪ %v < %v\n",
		foldT.Round(time.Microsecond), updT.Round(time.Microsecond), recT.Round(time.Millisecond))
}
