// Spellcheck demonstrates the §5.4 Kukich application: LSI over a character
// n-gram × word matrix suggests corrections for misspelled input — the same
// machinery as document retrieval, applied to a different descriptor–object
// matrix.
package main

import (
	"fmt"
	"log"

	"repro/internal/spell"
)

func main() {
	dictionary := []string{
		"information", "retrieval", "latent", "semantic", "indexing",
		"singular", "value", "decomposition", "matrix", "sparse",
		"document", "query", "vector", "cosine", "factor", "update",
		"folding", "orthogonal", "lanczos", "truncated", "precision",
		"recall", "relevance", "feedback", "filtering", "synonym",
		"polysemy", "lexical", "keyword", "database",
	}
	c, err := spell.New(dictionary, spell.Config{K: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary of %d words, %d character n-grams, k=%d factors\n\n",
		len(dictionary), len(c.Index.Grams), c.Model.K)

	for _, w := range []string{"informaton", "semantik", "retreival", "qeury", "lanzcos"} {
		fmt.Printf("%-12s ->", w)
		for _, s := range c.Suggest(w, 3) {
			fmt.Printf("  %s (%.2f)", s.Word, s.Score)
		}
		fmt.Println()
	}
}
