// Thesaurus demonstrates two §5.4 uses of the shared term/document space:
// the automatically constructed online thesaurus (returning nearby *terms*
// instead of documents) and matching people — assigning submissions to the
// reviewers whose own writings are closest in the latent space.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/reviewer"
	"repro/internal/synonym"
	"repro/internal/text"
)

func main() {
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 33, Topics: 5, Docs: 150, DocLen: 40,
		SynonymsPerConcept: 3, DocVariantLoyalty: 1.0,
	})
	model, err := core.BuildCollection(s.Collection, core.Config{K: 15})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— online thesaurus: nearest terms in the latent space —")
	for _, g := range s.SynonymGroups[:3] {
		if _, ok := s.Vocab.Index[g[0]]; !ok {
			continue
		}
		near, err := synonym.NearestTerms(model, s.Vocab, g[0], 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> %s\n", g[0], strings.Join(near, ", "))
		fmt.Printf("  %14s (ground-truth synonyms: %s)\n", "", strings.Join(g[1:], ", "))
	}

	fmt.Println("\n— matching people: reviewer assignment —")
	perTopic := map[int][]string{}
	for j, topic := range s.DocTopic {
		perTopic[topic] = append(perTopic[topic], s.Docs[j].Text)
	}
	var reviewers []corpus.Document
	for topic := 0; topic < 5; topic++ {
		reviewers = append(reviewers, corpus.Document{
			ID:   fmt.Sprintf("reviewer-%d", topic),
			Text: strings.Join(perTopic[topic][:12], " "),
		})
	}
	asn, err := reviewer.New(reviewers, reviewer.Config{K: 4},
		func(docs []corpus.Document) *corpus.Collection {
			return corpus.New(docs, text.ParseOptions{MinDocs: 1})
		})
	if err != nil {
		log.Fatal(err)
	}
	var papers []string
	var truth []int
	for topic := 0; topic < 5; topic++ {
		papers = append(papers, perTopic[topic][12], perTopic[topic][13])
		truth = append(truth, topic, topic)
	}
	asg, err := asn.Assign(papers, 2, 6)
	if err != nil {
		log.Fatal(err)
	}
	for p, revs := range asg {
		fmt.Printf("  paper %2d (topic %d) -> reviewers %v\n", p, truth[p], revs)
	}
	fmt.Printf("\nmean assigned similarity %.3f vs random %.3f\n",
		asn.MeanReviewerSimilarity(papers, asg), asn.RandomBaselineSimilarity(papers))
}
