// Crosslang demonstrates the §5.4 Landauer–Littman method: an LSI space
// trained on dual-language combined abstracts lets English queries retrieve
// French documents (and vice versa) with no translation step and zero
// lexical overlap between the languages.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/xlang"
)

func main() {
	b := corpus.GenerateBilingual(corpus.BilingualOptions{
		Seed: 7, Topics: 5, TrainingDocs: 100, MonoDocs: 40, Queries: 5,
	})
	mono := append(append([]corpus.Document(nil), b.MonoEN...), b.MonoFR...)
	ix, err := xlang.Build(b.Training, mono, xlang.Config{K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint space: %d dual abstracts, %d terms; %d monolingual docs folded in\n\n",
		b.Training.Size(), b.Training.Terms(), len(mono))

	nEN := len(b.MonoEN)
	for qi, q := range b.QueriesEN[:3] {
		fmt.Printf("EN query %q (topic %d)\n", q.Text, b.QueryTopicEN[qi])
		shown := 0
		for _, r := range ix.Query(q.Text) {
			if r.Doc < nEN {
				continue // skip English docs; show the French side
			}
			fr := r.Doc - nEN
			fmt.Printf("  %-8s topic %d  cosine %+.3f\n",
				b.MonoFR[fr].ID, b.MonoFRTopic[fr], r.Score)
			shown++
			if shown == 5 {
				break
			}
		}
		fmt.Println()
	}
	fmt.Println("every retrieved French document shares zero strings with the" +
		" English query — the association lives entirely in the latent space")
}
