// Quickstart: build an LSI index over a handful of documents, run a query,
// and print the ranked results. This is the smallest end-to-end use of the
// library: corpus.New → core.BuildCollection → Model.Rank.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/text"
	"repro/internal/weight"
)

func main() {
	docs := []corpus.Document{
		{ID: "d1", Text: "the car engine needs a new motor and the driver a garage"},
		{ID: "d2", Text: "automobile makers ship a sedan with a quiet motor and engine"},
		{ID: "d3", Text: "the driver parked the automobile near the garage"},
		{ID: "d4", Text: "a mechanic tuned the car motor and engine in the garage"},
		{ID: "d5", Text: "the driver praised the automobile engine"},
		{ID: "d6", Text: "elephants roam the savanna in large herds"},
		{ID: "d7", Text: "the zoo keeper fed the elephants from the savanna herds"},
	}

	// Parse: index any word that appears in at least two documents.
	coll := corpus.New(docs, text.ParseOptions{MinDocs: 2})
	fmt.Printf("indexed %d terms over %d documents: %v\n\n",
		coll.Terms(), coll.Size(), coll.Vocab.Terms)

	// Build a rank-2 LSI model with log×entropy weighting.
	model, err := core.BuildCollection(coll, core.Config{K: 2, Scheme: weight.LogEntropy})
	if err != nil {
		log.Fatal(err)
	}

	// The query says "automobile", but LSI also surfaces the car/motor
	// documents that never contain that word — the synonymy effect the
	// paper opens with (cars vs automobiles vs elephants).
	query := "automobile"
	fmt.Printf("query: %q\n", query)
	for _, r := range model.Rank(coll.QueryVector(query)) {
		fmt.Printf("  %-3s cosine %+.3f  %s\n", docs[r.Doc].ID, r.Score, docs[r.Doc].Text)
	}
}
