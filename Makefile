GO ?= go

.PHONY: check build test race vet bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the query-serving performance record (engine vs the
# seed scoring path) consumed by BENCH_query.json.
bench:
	$(GO) run ./cmd/lsibench -queryperf -out BENCH_query.json
