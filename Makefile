GO ?= go

.PHONY: check build test race race-hot vet bench bench-build

check: vet build test race-hot

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot runs the race detector on the packages with parallel kernels and
# shared-state fast paths — the places a data race would actually live —
# keeping `make check` much faster than a full -race sweep.
race-hot:
	$(GO) test -race ./internal/lanczos/... ./internal/sparse/...

# bench regenerates the query-serving performance record (engine vs the
# seed scoring path) consumed by BENCH_query.json.
bench:
	$(GO) run ./cmd/lsibench -queryperf -out BENCH_query.json

# bench-build regenerates the SVD build-time record (blocked vs seed
# Lanczos) consumed by BENCH_build.json.
bench-build:
	$(GO) run ./cmd/lsibench -buildperf -out BENCH_build.json
