GO ?= go

.PHONY: check check-full build test race race-hot stress vet lint lint-tests bench bench-query bench-build bench-shard bench-update bench-mem

# check is the fast pre-commit loop: vet, build, tests, the race detector
# on the hot parallel packages only, and the project linter. Run it on
# every change.
check: vet build test race-hot lint

# check-full is the slow full sweep — the race detector over every
# package plus everything in check and a double pass over the serving
# pipeline. Run it before merging, or whenever concurrency-adjacent code
# (engine, server, rank, lanczos, sparse) changed.
check-full: vet build lint lint-tests stress
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs lsilint, the in-tree static analyzer (internal/lint): the
# determinism, lock-discipline, and //lsilint:noalloc hot-path checks
# described in docs/STATIC_ANALYSIS.md.
lint:
	$(GO) run ./cmd/lsilint ./...

# lint-tests re-runs the interprocedural concurrency checks with the
# stress/test files loaded too (-tests), over the packages whose suites
# hammer shared state. Only the call-graph checks run here: the
# per-package determinism checks are serving-path invariants and would
# drown in benchmark timing code.
lint-tests:
	$(GO) run ./cmd/lsilint -tests -checks guardedby,snapshotsafe,noalloctrans \
		./internal/engine/... ./internal/shard/... ./internal/server/... ./internal/rank/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot runs the race detector on the packages with parallel kernels and
# shared-state fast paths — the places a data race would actually live —
# keeping `make check` much faster than a full -race sweep. internal/rank
# is included for the screening-mirror Extend chain (shared-tail claims
# racing against sibling copies).
race-hot:
	$(GO) test -race ./internal/lanczos/... ./internal/sparse/... ./internal/rank/...

# stress runs the snapshot-isolation stress suites (readers hammering
# immutable snapshots while the updater folds in and compacts, across
# engine, the sharded scatter-gather tier, and the HTTP server) under
# the race detector, twice, so scheduling-dependent interleavings get a
# second roll of the dice.
stress:
	$(GO) test -race -count=2 ./internal/engine/... ./internal/shard/... ./internal/server/...

# bench-query regenerates the query-serving performance record (seed
# scoring path vs float64 engine vs the float32-screened two-stage path
# vs the cluster-pruned IVF path) consumed by BENCH_query.json: each
# collection at gomaxprocs=1 and NumCPU, with clusters-scanned columns
# and a measured recall@10 nprobe sweep. bench is kept as an alias.
bench-query:
	$(GO) run ./cmd/lsibench -queryperf -out BENCH_query.json

bench: bench-query

# bench-shard regenerates the scatter-gather scaling record: 1/2/4/8
# shards over the 200k clustered corpus — single/batch query latency and
# fold-in ingest throughput — merged into BENCH_query.json under the
# "shard_scaling" key (the queryperf cases are preserved). Every shard
# count is parity-gated against the 1-shard results before timing.
bench-shard:
	$(GO) run ./cmd/lsibench -shardperf -out BENCH_query.json

# bench-build regenerates the SVD build-time record (blocked vs seed
# Lanczos) consumed by BENCH_build.json.
bench-build:
	$(GO) run ./cmd/lsibench -buildperf -out BENCH_build.json

# bench-update regenerates the compaction-time record (O'Brien dense
# inner SVD vs Golub–Kahan projection updating) consumed by
# BENCH_update.json: per corpus size, best-of-reps update seconds per
# strategy plus the top-10 retrieval overlap between the two updated
# models.
bench-update:
	$(GO) run ./cmd/lsibench -updateperf -out BENCH_update.json

# bench-mem regenerates the memory/startup record consumed by
# BENCH_mem.json: measured bytes per document for each screening tier
# (float64 / float32+residual / int8+scale+residual, parity-gated), and
# build-from-text vs restore-from-snapshot startup time at two corpus
# sizes (the -save-model / -load-model path).
bench-mem:
	$(GO) run ./cmd/lsibench -memperf -out BENCH_mem.json
