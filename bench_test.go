// Benchmarks regenerating the cost-relevant tables and figures of the
// paper. Naming convention: BenchmarkTableN / BenchmarkFigN measure the
// computation behind that exhibit; the experiment harness (cmd/lsibench)
// prints the corresponding data.
package repro_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/flops"
	"repro/internal/lanczos"
	"repro/internal/text"
	"repro/internal/vsm"
	"repro/internal/weight"
)

// medCollection caches the §3 example.
var medCollection = corpus.MED()

// synth builds the standard synthetic workload once per size.
func synth(docs int) *corpus.Synth {
	return corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 99, Topics: 10, Docs: docs, DocLen: 40,
		SynonymsPerConcept: 4, DocVariantLoyalty: 1.0, NoiseFrac: 0.35,
	})
}

// BenchmarkTable3Parse measures building the term–document matrix from the
// raw Table 2 topics (parser + vocabulary + CSR assembly).
func BenchmarkTable3Parse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if c := corpus.MED(); c.Terms() != 18 {
			b.Fatal("bad parse")
		}
	}
}

// BenchmarkFig4Factorization measures the k=2 SVD of the 18×14 example.
func BenchmarkFig4Factorization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildCollection(medCollection, core.Config{K: 2, Method: core.MethodDense}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Query measures query projection (Eq 6) plus cosine ranking.
func BenchmarkFig5Query(b *testing.B) {
	m, err := core.BuildCollection(medCollection, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		b.Fatal(err)
	}
	q := medCollection.QueryVector(corpus.MEDQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := m.Rank(q); len(r) != 14 {
			b.Fatal("bad rank")
		}
	}
}

// BenchmarkTable4KSweep measures the k ∈ {2,4,8} factor sweep of Table 4.
func BenchmarkTable4KSweep(b *testing.B) {
	q := medCollection.QueryVector(corpus.MEDQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 4, 8} {
			m, err := core.BuildCollection(medCollection, core.Config{K: k, Method: core.MethodDense})
			if err != nil {
				b.Fatal(err)
			}
			m.AboveThreshold(m.ProjectQuery(q), 0.40)
		}
	}
}

// BenchmarkFig7FoldIn measures folding two documents into the example model.
func BenchmarkFig7FoldIn(b *testing.B) {
	m, err := core.BuildCollection(medCollection, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		b.Fatal(err)
	}
	d := medCollection.DocVectors(corpus.MEDUpdateTopics)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Clone().FoldInDocs(d)
	}
}

// BenchmarkFig8Recompute measures rebuilding the SVD of the 18×16 matrix.
func BenchmarkFig8Recompute(b *testing.B) {
	ext := medCollection.Extend(corpus.MEDUpdateTopics, corpus.MEDParseOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildCollection(ext, core.Config{K: 2, Method: core.MethodDense}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Update measures the SVD-updating document phase.
func BenchmarkFig9Update(b *testing.B) {
	d := medCollection.DocVectors(corpus.MEDUpdateTopics)
	m, err := core.BuildCollection(medCollection, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Clone().UpdateDocs(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 compares the three update paths at a realistic scale —
// the measured counterpart of Table 7's analytic flop counts. Sub-benches
// print in one run so the fold ≪ update < recompute ordering is visible.
func BenchmarkTable7(b *testing.B) {
	s := synth(400)
	extra := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 99, Topics: 10, Docs: 420, DocLen: 40,
		SynonymsPerConcept: 4, DocVariantLoyalty: 1.0, NoiseFrac: 0.35,
	}).Docs[400:]
	d := s.DocVectors(extra)
	base, err := core.BuildCollection(s.Collection, core.Config{K: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("FoldingInDocuments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base.Clone().FoldInDocs(d)
		}
	})
	b.Run("SVDUpdatingDocuments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := base.Clone().UpdateDocs(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RecomputingSVD", func(b *testing.B) {
		big := s.TD.AugmentCols(d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(big, core.Config{K: 30, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The analytic model for the same shape, reported as custom metrics.
	b.Run("AnalyticFlops", func(b *testing.B) {
		p := flops.Params{
			M: s.Terms(), N: s.Size(), K: 30, P: 20,
			I: 120, Trp: 30,
			NNZA: s.TD.NNZ(), NNZD: d.NNZ(),
		}
		var fold, upd, rec float64
		for i := 0; i < b.N; i++ {
			fold = flops.FoldingInDocuments(p)
			upd = flops.SVDUpdatingDocuments(p)
			rec = flops.RecomputingSVD(p)
		}
		b.ReportMetric(fold, "fold-flops")
		b.ReportMetric(upd, "update-flops")
		b.ReportMetric(rec, "recompute-flops")
	})
}

// BenchmarkRetrievalLSI / BenchmarkRetrievalKeyword time one full judged
// retrieval run of the §5.1 comparison.
func BenchmarkRetrievalLSI(b *testing.B) {
	s := synth(300)
	m, err := core.BuildCollection(s.Collection, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range s.Queries {
			m.Rank(s.QueryVector(q.Text))
		}
	}
}

func BenchmarkRetrievalKeywordBaseline(b *testing.B) {
	s := synth(300)
	qvs := make([][]float64, len(s.Queries))
	for i, q := range s.Queries {
		qvs[i] = s.QueryVector(q.Text)
	}
	m := vsm.Build(s.TD, weight.LogEntropy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qv := range qvs {
			m.Rank(qv)
		}
	}
}

// BenchmarkKFactorsBuild times model construction across the §5.2 k sweep.
func BenchmarkKFactorsBuild(b *testing.B) {
	s := synth(300)
	for _, k := range []int{10, 50, 150} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCollection(s.Collection, core.Config{K: k, Scheme: weight.LogEntropy, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeSVD is the §5.3 TREC-scale stand-in: a truncated SVD of a
// large sparse synthetic term–document matrix via Lanczos.
func BenchmarkLargeSVD(b *testing.B) {
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 5, Topics: 20, Docs: 3000, DocLen: 60,
		SynonymsPerConcept: 4, NoiseWords: 200,
	})
	w := weight.Apply(s.TD, weight.LogEntropy)
	op := lanczos.OpCSR(w)
	b.ReportMetric(float64(w.NNZ()), "nnz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lanczos.TruncatedSVD(op, lanczos.Options{K: 50, Seed: 1, MaxSteps: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// rankModel builds a serving-scale Model directly from random document
// vectors; only the scoring path is exercised, so the SVD is skipped.
func rankModel(docs, k int) *core.Model {
	rng := rand.New(rand.NewSource(7))
	v := dense.New(docs, k)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	s := make([]float64, k)
	for i := range s {
		s[i] = 1
	}
	return &core.Model{K: k, U: dense.New(1, k), S: s, V: v}
}

func randQuery(k int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, k)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

// seedRankPath replicates the pre-engine query path: one full cosine per
// document (recomputing both norms) followed by an O(n log n) sort.
func seedRankPath(v *dense.Matrix, qhat []float64) []core.Ranked {
	out := make([]core.Ranked, v.Rows)
	for j := 0; j < v.Rows; j++ {
		out[j] = core.Ranked{Doc: j, Score: dense.Cosine(qhat, v.Row(j))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

// BenchmarkQueryTop10 measures single-query top-10 latency — the
// scoring engine (cached norms + bounded heap selection) against the
// seed path it replaced — at serving-scale collection sizes.
func BenchmarkQueryTop10(b *testing.B) {
	const factors = 100
	for _, docs := range []int{10000, 50000} {
		m := rankModel(docs, factors)
		qhat := randQuery(factors, 11)
		m.RankVectorTop(qhat, 10) // warm the norm cache outside the timer
		b.Run(fmt.Sprintf("seed/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := seedRankPath(m.V, qhat); len(r) != docs {
					b.Fatal("bad rank")
				}
			}
		})
		b.Run(fmt.Sprintf("engine/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := m.RankVectorTop(qhat, 10); len(r) != 10 {
					b.Fatal("bad rank")
				}
			}
		})
	}
}

// BenchmarkQueryBatch measures batched throughput: 64 queries scored as
// one blocked gemm against the normalized document matrix, versus the
// same 64 queries served one at a time.
func BenchmarkQueryBatch(b *testing.B) {
	const (
		factors = 100
		nq      = 64
	)
	for _, docs := range []int{10000, 50000} {
		m := rankModel(docs, factors)
		qhats := make([][]float64, nq)
		for i := range qhats {
			qhats[i] = randQuery(factors, int64(100+i))
		}
		m.RankVectorTop(qhats[0], 10) // warm the norm cache
		b.Run(fmt.Sprintf("sequential/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range qhats {
					if r := m.RankVectorTop(q, 10); len(r) != 10 {
						b.Fatal("bad rank")
					}
				}
			}
		})
		b.Run(fmt.Sprintf("gemm/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := m.RankVectorBatch(qhats, 10); len(r) != nq {
					b.Fatal("bad batch")
				}
			}
		})
	}
}

// BenchmarkFoldInStream times the §5.3 filtering path: projecting incoming
// documents one at a time.
func BenchmarkFoldInStream(b *testing.B) {
	s := synth(400)
	train := corpus.New(s.Docs[:300], text.ParseOptions{MinDocs: 2})
	m, err := core.BuildCollection(train, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	stream := make([][]float64, 0, 100)
	for _, d := range s.Docs[300:] {
		stream = append(stream, train.Vocab.Count(d.Text))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, doc := range stream {
			m.ProjectQuery(doc)
		}
	}
}
