// Package repro is a from-scratch Go reproduction of "Computational
// Methods for Intelligent Information Access" (Berry, Dumais & Letsche,
// Supercomputing '95): Latent Semantic Indexing over sparse truncated SVD,
// with folding-in, SVD-updating, and the paper's application suite.
//
// The implementation lives under internal/:
//
//	internal/core        the LSI model (build, query, fold-in, SVD-update)
//	internal/lanczos     sparse truncated SVD (Golub–Kahan Lanczos, randomized)
//	internal/dense       dense kernels: QR, Jacobi and Golub–Reinsch SVD
//	internal/sparse      CSR matrices with parallel mat-vec kernels
//	internal/weight      local×global term weighting (Eq 5)
//	internal/text        tokenizer, stop words, parsing rules
//	internal/corpus      the §3 MEDLINE example and synthetic collections
//	internal/vsm,eval    keyword/lexical baselines and IR metrics
//	internal/filter,...  the §5 applications
//	internal/experiments every table and figure, regenerated
//
// See README.md for the tour and EXPERIMENTS.md for paper-vs-measured
// results. Benchmarks for every table and figure are in bench_test.go.
package repro
