package lsi

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func medDocs() []Document {
	return []Document{
		{ID: "M1", Text: "study of depressed patients after discharge with regard to age of onset and culture"},
		{ID: "M2", Text: "culture of pleuropneumonia like organisms found in vaginal discharge of patients"},
		{ID: "M3", Text: "study showed oestrogen production is depressed by ovarian irradiation"},
		{ID: "M4", Text: "cortisone rapidly depressed the secondary rise in oestrogen output of patients"},
		{ID: "M5", Text: "boys tend to react to death anxiety by acting out behavior while girls tended to become depressed"},
		{ID: "M6", Text: "changes in children's behavior following hospitalization studied a week after discharge"},
		{ID: "M7", Text: "surgical technique to close ventricular septal defects"},
		{ID: "M8", Text: "chromosomal abnormalities in blood cultures and bone marrow from leukaemic patients"},
		{ID: "M9", Text: "study of christmas disease with respect to generation and culture"},
		{ID: "M10", Text: "insulin not responsible for metabolic abnormalities accompanying a prolonged fast"},
		{ID: "M11", Text: "close relationship between high blood pressure and vascular disease"},
		{ID: "M12", Text: "mouse kidneys show a decline with respect to age in the ability to concentrate the urine during a water fast"},
		{ID: "M13", Text: "fast cell generation in the eye lens epithelium of rats"},
		{ID: "M14", Text: "fast rise of cerebral oxygen pressure in rats"},
	}
}

func build(t *testing.T) *Idx {
	t.Helper()
	// Raw weighting + k=2 reproduces the paper's worked example.
	x, err := Index(medDocs(), Options{K: 2, RawWeighting: true})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestIndexAndSearch(t *testing.T) {
	x := build(t)
	if x.Terms() == 0 || x.Docs() != 14 || x.Factors() != 2 {
		t.Fatalf("stats: %d terms %d docs k=%d", x.Terms(), x.Docs(), x.Factors())
	}
	hits := x.Search("age of children with blood abnormalities", 3)
	if len(hits) != 3 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].ID != "M9" {
		t.Fatalf("top hit %s want M9 (the latent-association result)", hits[0].ID)
	}
	if hits[0].Cosine < hits[1].Cosine {
		t.Fatal("hits not sorted")
	}
}

func TestSearchUnknownWords(t *testing.T) {
	x := build(t)
	if hits := x.Search("zzzz qqqq", 5); hits != nil {
		t.Fatalf("unknown-word query returned %v", hits)
	}
}

func TestSearchSimilar(t *testing.T) {
	x := build(t)
	hits, err := x.SearchSimilar("M13", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ID == "M13" {
			t.Fatal("reference document returned")
		}
	}
	// M14 (the other rats topic) should be the closest.
	if hits[0].ID != "M14" {
		t.Fatalf("most similar to M13 is %s want M14", hits[0].ID)
	}
	if _, err := x.SearchSimilar("nope", 3); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestAddAndStaleness(t *testing.T) {
	x := build(t)
	if s := x.Staleness(); s > 1e-9 {
		t.Fatalf("fresh staleness %v", s)
	}
	x.Add(Document{ID: "M15", Text: "behavior of rats after detected rise in oestrogen"})
	if x.Docs() != 15 {
		t.Fatalf("docs %d", x.Docs())
	}
	if s := x.Staleness(); s <= 0 {
		t.Fatalf("staleness after fold %v", s)
	}
	hits := x.Search("rats oestrogen", 3)
	found := false
	for _, h := range hits {
		if h.ID == "M15" {
			found = true
		}
	}
	if !found {
		t.Fatalf("added doc not retrievable: %v", hits)
	}
}

func TestRelatedTerms(t *testing.T) {
	x := build(t)
	near, err := x.RelatedTerms("oestrogen", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(near) != 4 {
		t.Fatalf("got %d terms", len(near))
	}
	// "depressed" shares the hormone-topic contexts (M3, M4).
	if !strings.Contains(strings.Join(near, " "), "depressed") {
		t.Fatalf("expected 'depressed' among neighbours of 'oestrogen': %v", near)
	}
	if _, err := x.RelatedTerms("nonword", 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x := build(t)
	x.Add(Document{ID: "M15", Text: "behavior of rats after detected rise in oestrogen"})
	path := filepath.Join(t.TempDir(), "db.lsi")
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Docs() != 15 {
		t.Fatalf("loaded %d docs", got.Docs())
	}
	h1 := x.Search("blood abnormalities", 5)
	h2 := got.Search("blood abnormalities", 5)
	for i := range h1 {
		if h1[i].ID != h2[i].ID {
			t.Fatal("loaded index ranks differently")
		}
	}
	// The added doc's metadata survives.
	sim, err := got.SearchSimilar("M15", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 2 {
		t.Fatal("folded doc not addressable after reload")
	}
}

func TestWriteToRead(t *testing.T) {
	x := build(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Terms() != x.Terms() {
		t.Fatal("terms changed")
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := Index(nil, Options{}); err == nil {
		t.Fatal("expected error for no documents")
	}
	if _, err := Index([]Document{{ID: "a", Text: "all unique words here today"}}, Options{}); err == nil {
		t.Fatal("expected error for vocabulary-free collection")
	}
}

func TestBigramOption(t *testing.T) {
	docs := []Document{
		{ID: "1", Text: "blood pressure rises with vascular disease and blood pressure falls with rest"},
		{ID: "2", Text: "blood pressure measurement and vascular disease"},
		{ID: "3", Text: "behavioral pressure in crowded rooms"},
	}
	x, err := Index(docs, Options{K: 2, Bigrams: true, MinDocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.Terms() <= 3 {
		t.Fatalf("bigram vocabulary suspiciously small: %d", x.Terms())
	}
}
