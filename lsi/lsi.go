// Package lsi is the public API of this library: Latent Semantic Indexing
// as described in Berry, Dumais & Letsche, "Computational Methods for
// Intelligent Information Access" (Supercomputing '95).
//
// Typical use:
//
//	idx, err := lsi.Index(docs, lsi.Options{K: 100})
//	hits := idx.Search("sparse singular value decomposition", 10)
//	idx.Add(lsi.Document{ID: "new", Text: "..."})     // folding-in
//	related, _ := idx.RelatedTerms("matrix", 5)       // online thesaurus
//	err = idx.Save("corpus.lsi")                      // persist the database
//
// The facade wraps internal/core (the factor model), internal/corpus
// (parsing and the term–document matrix) and internal/index (persistence);
// applications needing the full surface — SVD-updating phases, filtering
// profiles, cross-language spaces, the evaluation harness — use those
// packages directly.
package lsi

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/weight"
)

// Document is one text object to index.
type Document struct {
	ID   string
	Text string
}

// Options configures Index.
type Options struct {
	// K is the number of latent factors (default 100, clamped to the
	// collection size; the paper uses 100–300 for real collections).
	K int
	// RawWeighting disables the log×entropy term weighting (the scheme the
	// paper's §5.1 found most effective) in favor of raw counts.
	RawWeighting bool
	// MinDocs is the parsing rule: index a word only if it appears in at
	// least this many documents (default 2, the paper's rule).
	MinDocs int
	// Bigrams additionally indexes adjacent word pairs as phrase
	// descriptors (§5.4).
	Bigrams bool
	// Seed drives the iterative SVD solver (deterministic default).
	Seed int64
}

// Hit is one search result.
type Hit struct {
	ID     string
	Text   string
	Cosine float64
}

// Idx is a queryable LSI database.
type Idx struct {
	inner *index.Index
	docs  []Document
}

// Index builds an LSI database over the documents.
func Index(docs []Document, opts Options) (*Idx, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("lsi: no documents")
	}
	k := opts.K
	if k <= 0 {
		k = 100
	}
	scheme := weight.LogEntropy
	if opts.RawWeighting {
		scheme = weight.Raw
	}
	minDocs := opts.MinDocs
	if minDocs <= 0 {
		minDocs = 2
	}
	cdocs := make([]corpus.Document, len(docs))
	for i, d := range docs {
		cdocs[i] = corpus.Document{ID: d.ID, Text: d.Text}
	}
	inner, err := index.Build(cdocs,
		text.ParseOptions{MinDocs: minDocs, IncludeBigrams: opts.Bigrams},
		core.Config{K: k, Scheme: scheme, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("lsi: %w", err)
	}
	return &Idx{inner: inner, docs: append([]Document(nil), docs...)}, nil
}

// Search returns the n documents most similar to the free-text query,
// best first. Queries whose words are all unindexed return nil.
func (x *Idx) Search(query string, n int) []Hit {
	raw := x.inner.Coll.QueryVector(query)
	nz := false
	for _, v := range raw {
		if v != 0 {
			nz = true
			break
		}
	}
	if !nz {
		return nil
	}
	ranked := x.inner.Model.RankTop(raw, n)
	out := make([]Hit, len(ranked))
	for i, r := range ranked {
		out[i] = Hit{ID: x.docs[r.Doc].ID, Text: x.docs[r.Doc].Text, Cosine: r.Score}
	}
	return out
}

// SearchBatch answers several free-text queries in one pass: the block is
// scored against the document matrix as a single cache-blocked gemm, so
// throughput-oriented callers (offline evaluation, request coalescing)
// pay far less per query than repeated Search calls. Result i corresponds
// to query i; queries with no indexed words get an empty slice.
func (x *Idx) SearchBatch(queries []string, n int) [][]Hit {
	out := make([][]Hit, len(queries))
	raws := make([][]float64, 0, len(queries))
	slots := make([]int, 0, len(queries))
	for i, q := range queries {
		raw := x.inner.Coll.QueryVector(q)
		nz := false
		for _, v := range raw {
			if v != 0 {
				nz = true
				break
			}
		}
		if !nz {
			out[i] = []Hit{}
			continue
		}
		raws = append(raws, raw)
		slots = append(slots, i)
	}
	for bi, ranked := range x.inner.Model.RankBatch(raws, n) {
		hits := make([]Hit, len(ranked))
		for j, r := range ranked {
			hits[j] = Hit{ID: x.docs[r.Doc].ID, Text: x.docs[r.Doc].Text, Cosine: r.Score}
		}
		out[slots[bi]] = hits
	}
	return out
}

// SearchSimilar returns the n documents most similar to an existing
// document (query-by-example: "queries can be … documents", §5.4). The
// reference document itself is excluded.
func (x *Idx) SearchSimilar(id string, n int) ([]Hit, error) {
	ref := -1
	for j, d := range x.docs {
		if d.ID == id {
			ref = j
			break
		}
	}
	if ref < 0 {
		return nil, fmt.Errorf("lsi: no document %q", id)
	}
	// n+1 covers the reference document occupying one of the top slots.
	ranked := x.inner.Model.RankVectorTop(x.inner.Model.DocVector(ref), n+1)
	out := make([]Hit, 0, n)
	for _, r := range ranked {
		if r.Doc == ref {
			continue
		}
		out = append(out, Hit{ID: x.docs[r.Doc].ID, Text: x.docs[r.Doc].Text, Cosine: r.Score})
		if len(out) == n {
			break
		}
	}
	return out, nil
}

// Add folds a new document into the database (Eq 7). Cheap, but repeated
// additions degrade the factors; Staleness reports how far gone they are.
func (x *Idx) Add(d Document) {
	x.inner.AddFolded(corpus.Document{ID: d.ID, Text: d.Text})
	x.docs = append(x.docs, d)
}

// Staleness returns ‖V̂ᵀV̂−I‖_F, the §4.3 measure of distortion introduced
// by Add since the last full build. Zero means pristine; operators should
// rebuild (or SVD-update via internal/core) when it grows large relative
// to 1.
func (x *Idx) Staleness() float64 {
	return x.inner.Model.DocOrthogonality()
}

// RelatedTerms returns the n indexed terms nearest to the given term in
// the latent space — the automatically constructed thesaurus of §5.4.
func (x *Idx) RelatedTerms(term string, n int) ([]string, error) {
	i, ok := x.inner.Coll.Vocab.Index[term]
	if !ok {
		return nil, fmt.Errorf("lsi: %q is not an indexed term", term)
	}
	type scored struct {
		term string
		s    float64
	}
	best := make([]scored, 0, n+1)
	for j, w := range x.inner.Coll.Vocab.Terms {
		if j == i {
			continue
		}
		s := x.inner.Model.TermSimilarity(i, j)
		// Insertion into the running top-n.
		pos := len(best)
		for pos > 0 && best[pos-1].s < s {
			pos--
		}
		if pos < n {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{w, s}
			if len(best) > n {
				best = best[:n]
			}
		}
	}
	out := make([]string, len(best))
	for i, b := range best {
		out[i] = b.term
	}
	return out, nil
}

// Terms returns the number of indexed terms; Docs the number of documents
// (including added ones); Factors the rank k of the model.
func (x *Idx) Terms() int   { return x.inner.Coll.Terms() }
func (x *Idx) Docs() int    { return len(x.docs) }
func (x *Idx) Factors() int { return x.inner.Model.K }

// Save persists the database to a file; Load restores it.
func (x *Idx) Save(path string) error { return x.inner.Save(path) }

// WriteTo serializes the database to a writer.
func (x *Idx) WriteTo(w io.Writer) (int64, error) { return x.inner.WriteTo(w) }

// Load restores a database saved by Save.
func Load(path string) (*Idx, error) {
	inner, err := index.Load(path)
	if err != nil {
		return nil, err
	}
	return fromInner(inner)
}

// Read restores a database from a reader.
func Read(r io.Reader) (*Idx, error) {
	inner, err := index.Read(r)
	if err != nil {
		return nil, err
	}
	return fromInner(inner)
}

func fromInner(inner *index.Index) (*Idx, error) {
	docs := make([]Document, 0, inner.NumDocs())
	for j := 0; j < inner.NumDocs(); j++ {
		d := inner.Doc(j)
		docs = append(docs, Document{ID: d.ID, Text: d.Text})
	}
	return &Idx{inner: inner, docs: docs}, nil
}
